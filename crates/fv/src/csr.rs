//! Explicitly assembled sparse Jacobian (the matrix-*based* baseline).
//!
//! The paper contrasts the matrix-free approach against the conventional strategy in
//! which "the full matrix J is assembled and stored in a sparse format, and then used
//! in a second step to perform a standard matrix-vector multiplication" (§II-A).
//! This module provides exactly that baseline: a CSR matrix assembled from the TPFA
//! coefficients, a standard SpMV, and a [`LinearOperator`] wrapper so the same CG
//! solver can run on top of it.  The ablation benchmark
//! `benches/matrix_free_vs_assembled.rs` quantifies the memory and assembly cost the
//! matrix-free approach removes.

use crate::operator::LinearOperator;
use mffv_mesh::{CellField, Dims, Direction, DirichletSet, Scalar, Transmissibilities};

/// A compressed-sparse-row matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix<T: Scalar> {
    num_rows: usize,
    num_cols: usize,
    row_offsets: Vec<usize>,
    col_indices: Vec<usize>,
    values: Vec<T>,
}

impl<T: Scalar> CsrMatrix<T> {
    /// Build a CSR matrix from a list of `(row, col, value)` triplets.  Duplicate
    /// entries are summed; rows and columns beyond the given dimensions panic.
    ///
    /// Assembly is the classic two-pass count/prefix-sum scheme: one pass
    /// counts entries per row, a prefix sum turns the counts into scatter
    /// offsets, and a second pass scatters the triplets into a single flat
    /// buffer — no per-row `Vec` allocations, regardless of matrix size.
    pub fn from_triplets(num_rows: usize, num_cols: usize, triplets: &[(usize, usize, T)]) -> Self {
        // Pass 1: count entries per row (shifted by one so the prefix sum
        // yields scatter offsets in place).
        let mut offsets = vec![0usize; num_rows + 1];
        for &(r, c, _) in triplets {
            assert!(
                r < num_rows && c < num_cols,
                "triplet ({r}, {c}) out of bounds"
            );
            offsets[r + 1] += 1;
        }
        for i in 0..num_rows {
            offsets[i + 1] += offsets[i];
        }
        // Pass 2: scatter every triplet into its row segment of one flat buffer.
        let mut entries: Vec<(usize, T)> = vec![(0, T::ZERO); triplets.len()];
        let mut cursor = offsets.clone();
        for &(r, c, v) in triplets {
            entries[cursor[r]] = (c, v);
            cursor[r] += 1;
        }
        // Sort each row segment by column and merge duplicates while writing
        // the final arrays.
        let mut row_offsets = Vec::with_capacity(num_rows + 1);
        let mut col_indices = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        row_offsets.push(0);
        for r in 0..num_rows {
            let segment = &mut entries[offsets[r]..offsets[r + 1]];
            // Stable sort: duplicates keep their insertion order, so they are
            // summed deterministically first-to-last (rows of the 7-point
            // operator are tiny, so this stays on the allocation-free
            // small-slice path).
            segment.sort_by_key(|&(c, _)| c);
            let row_start = col_indices.len();
            for &(c, v) in segment.iter() {
                // Merge a duplicate into the entry just pushed for this row;
                // the `last_mut` match keeps the hot loop free of unwraps.
                match (col_indices.last(), values.last_mut()) {
                    (Some(&last_col), Some(last_val))
                        if col_indices.len() > row_start && last_col == c =>
                    {
                        *last_val += v;
                    }
                    _ => {
                        col_indices.push(c);
                        values.push(v);
                    }
                }
            }
            row_offsets.push(col_indices.len());
        }
        Self {
            num_rows,
            num_cols,
            row_offsets,
            col_indices,
            values,
        }
    }

    /// Assemble the SPD Newton operator `A` (Dirichlet-eliminated form, `DESIGN.md`
    /// §4) from the TPFA coefficient table and the Dirichlet set.
    pub fn assemble_spd(coeffs: &Transmissibilities<T>, dirichlet: &DirichletSet) -> Self {
        let dims = coeffs.dims();
        let n = dims.num_cells();
        let mut triplets: Vec<(usize, usize, T)> = Vec::with_capacity(7 * n);
        for c in dims.iter_cells() {
            let k = dims.linear(c);
            if dirichlet.contains_linear(k) {
                triplets.push((k, k, T::ONE));
                continue;
            }
            let mut diag = T::ZERO;
            for dir in Direction::ALL {
                if let Some(nb) = dims.neighbor(c, dir) {
                    let l = dims.linear(nb);
                    let coeff = coeffs.get(k, dir);
                    diag += coeff;
                    if !dirichlet.contains_linear(l) {
                        triplets.push((k, l, -coeff));
                    }
                }
            }
            triplets.push((k, k, diag));
        }
        Self::from_triplets(n, n, &triplets)
    }

    /// Assemble the literal Eq. (6) Jacobian (paper sign convention, Dirichlet rows
    /// equal to the identity, Dirichlet columns kept).  Not SPD; provided for
    /// faithfulness tests against [`crate::MatrixFreeOperator::apply_paper_jx`].
    pub fn assemble_paper_jacobian(
        coeffs: &Transmissibilities<T>,
        dirichlet: &DirichletSet,
    ) -> Self {
        let dims = coeffs.dims();
        let n = dims.num_cells();
        let mut triplets: Vec<(usize, usize, T)> = Vec::with_capacity(7 * n);
        for c in dims.iter_cells() {
            let k = dims.linear(c);
            if dirichlet.contains_linear(k) {
                triplets.push((k, k, T::ONE));
                continue;
            }
            let mut diag = T::ZERO;
            for dir in Direction::ALL {
                if let Some(nb) = dims.neighbor(c, dir) {
                    let l = dims.linear(nb);
                    let coeff = coeffs.get(k, dir);
                    diag -= coeff;
                    triplets.push((k, l, coeff));
                }
            }
            triplets.push((k, k, diag));
        }
        Self::from_triplets(n, n, &triplets)
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Memory footprint of the assembled matrix in bytes (values + column indices +
    /// row offsets) — the storage the matrix-free approach avoids.
    pub fn bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<T>()
            + self.col_indices.len() * std::mem::size_of::<usize>()
            + self.row_offsets.len() * std::mem::size_of::<usize>()
    }

    /// Entry `(row, col)` if stored.
    pub fn get(&self, row: usize, col: usize) -> Option<T> {
        let start = self.row_offsets[row];
        let end = self.row_offsets[row + 1];
        let cols = &self.col_indices[start..end];
        cols.binary_search(&col)
            .ok()
            .map(|pos| self.values[start + pos])
    }

    /// Standard sparse matrix-vector product `y = A x` on raw slices.
    pub fn spmv(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.num_cols, "input length mismatch");
        assert_eq!(y.len(), self.num_rows, "output length mismatch");
        for (row, out) in y.iter_mut().enumerate() {
            let start = self.row_offsets[row];
            let end = self.row_offsets[row + 1];
            let mut acc = T::ZERO;
            for idx in start..end {
                acc = self.values[idx].mul_add(x[self.col_indices[idx]], acc);
            }
            *out = acc;
        }
    }

    /// Maximum relative asymmetry `|a_ij - a_ji| / max(|a_ij|, |a_ji|)` over stored
    /// entries — zero for a structurally and numerically symmetric matrix.
    pub fn max_asymmetry(&self) -> f64 {
        let mut worst = 0.0f64;
        for row in 0..self.num_rows {
            for idx in self.row_offsets[row]..self.row_offsets[row + 1] {
                let col = self.col_indices[idx];
                let a = self.values[idx].to_f64();
                let b = self.get(col, row).map(|v| v.to_f64()).unwrap_or(0.0);
                let denom = a.abs().max(b.abs());
                if denom > 0.0 {
                    worst = worst.max((a - b).abs() / denom);
                }
            }
        }
        worst
    }
}

/// A [`LinearOperator`] backed by an assembled CSR matrix defined on a grid.
#[derive(Clone, Debug)]
pub struct AssembledOperator<T: Scalar> {
    dims: Dims,
    matrix: CsrMatrix<T>,
}

impl<T: Scalar> AssembledOperator<T> {
    /// Assemble the SPD operator for a coefficient table and Dirichlet set.
    pub fn new(coeffs: &Transmissibilities<T>, dirichlet: &DirichletSet) -> Self {
        Self {
            dims: coeffs.dims(),
            matrix: CsrMatrix::assemble_spd(coeffs, dirichlet),
        }
    }

    /// Assemble from a workload at precision `T`.
    pub fn from_workload(workload: &mffv_mesh::Workload) -> Self {
        let coeffs: Transmissibilities<T> = workload.transmissibility().convert();
        Self::new(&coeffs, workload.dirichlet())
    }

    /// The underlying CSR matrix.
    pub fn matrix(&self) -> &CsrMatrix<T> {
        &self.matrix
    }
}

impl<T: Scalar> LinearOperator<T> for AssembledOperator<T> {
    fn dims(&self) -> Dims {
        self.dims
    }

    fn apply(&self, x: &CellField<T>, y: &mut CellField<T>) {
        assert_eq!(x.dims(), self.dims);
        assert_eq!(y.dims(), self.dims);
        self.matrix.spmv(x.as_slice(), y.as_mut_slice());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix_free::MatrixFreeOperator;
    use crate::operator::symmetry_defect;
    use mffv_mesh::workload::WorkloadSpec;
    use proptest::prelude::*;

    #[test]
    fn triplet_assembly_merges_duplicates() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0f64), (0, 0, 2.0), (1, 0, 4.0)]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 0), Some(3.0));
        assert_eq!(m.get(1, 0), Some(4.0));
        assert_eq!(m.get(1, 1), None);
    }

    #[test]
    fn spmv_matches_dense_computation() {
        // [[2, 1], [0, 3]] * [1, 2] = [4, 6]
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0f64), (0, 1, 1.0), (1, 1, 3.0)]);
        let mut y = vec![0.0; 2];
        m.spmv(&[1.0, 2.0], &mut y);
        assert_eq!(y, vec![4.0, 6.0]);
    }

    #[test]
    fn assembled_spd_matches_matrix_free_operator() {
        let w = WorkloadSpec::quickstart().scaled(2).build();
        let coeffs = w.transmissibility().clone();
        let mf = MatrixFreeOperator::new(coeffs.clone(), w.dirichlet());
        let asm = AssembledOperator::new(&coeffs, w.dirichlet());
        let dims = w.dims();
        let x = CellField::from_fn(dims, |c| {
            (c.x as f64 * 1.3) - (c.y as f64 * 0.7) + c.z as f64
        });
        let y_mf = mf.apply_new(&x);
        let y_asm = asm.apply_new(&x);
        assert!(y_mf.max_abs_diff(&y_asm) < 1e-12);
    }

    #[test]
    fn assembled_paper_jacobian_matches_matrix_free_paper_form() {
        let w = WorkloadSpec::quickstart().scaled(2).build();
        let coeffs = w.transmissibility().clone();
        let mf = MatrixFreeOperator::new(coeffs.clone(), w.dirichlet());
        let jac = CsrMatrix::assemble_paper_jacobian(&coeffs, w.dirichlet());
        let dims = w.dims();
        let x = CellField::from_fn(dims, |c| (c.x + 2 * c.y + 3 * c.z) as f64);
        let mut y_mf = CellField::zeros(dims);
        mf.apply_paper_jx(&x, &mut y_mf);
        let mut y_csr = vec![0.0; dims.num_cells()];
        jac.spmv(x.as_slice(), &mut y_csr);
        for (i, &v) in y_csr.iter().enumerate() {
            assert!((y_mf.get(i) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn spd_assembly_is_symmetric() {
        let w = WorkloadSpec::fig5(mffv_mesh::Dims::new(6, 5, 4)).build();
        let asm = AssembledOperator::<f64>::from_workload(&w);
        assert!(asm.matrix().max_asymmetry() < 1e-12);
        assert!(symmetry_defect(&asm, 3) < 1e-10);
    }

    #[test]
    fn nnz_has_seven_point_structure() {
        let dims = mffv_mesh::Dims::new(4, 4, 4);
        let coeffs = Transmissibilities::<f64>::uniform(dims, 1.0);
        let m = CsrMatrix::assemble_spd(&coeffs, &DirichletSet::empty());
        // 64 diagonal entries + 2 * number of interior faces.
        let faces = 3 * 4 * 4 * 3; // (nx-1)*ny*nz per axis, symmetric grid
        assert_eq!(m.nnz(), 64 + 2 * faces);
        assert!(m.bytes() > 0);
        assert_eq!(m.num_rows(), 64);
        assert_eq!(m.num_cols(), 64);
    }

    proptest! {
        #[test]
        fn spmv_is_linear(scale in -5.0f64..5.0) {
            let dims = mffv_mesh::Dims::new(3, 3, 3);
            let coeffs = Transmissibilities::<f64>::uniform(dims, 1.5);
            let m = CsrMatrix::assemble_spd(&coeffs, &DirichletSet::empty());
            let x = CellField::from_fn(dims, |c| c.x as f64 + 0.5 * c.z as f64);
            let mut y1 = vec![0.0; dims.num_cells()];
            m.spmv(x.as_slice(), &mut y1);
            let mut scaled = x.clone();
            scaled.scale(scale);
            let mut y2 = vec![0.0; dims.num_cells()];
            m.spmv(scaled.as_slice(), &mut y2);
            for i in 0..y1.len() {
                prop_assert!((y2[i] - scale * y1[i]).abs() < 1e-9);
            }
        }
    }
}
