//! The discrete residual of Eq. (3) and the Newton right-hand side.
//!
//! For a cell `K` outside the Dirichlet set `T_D` the residual is the sum of the
//! interfacial fluxes towards its neighbours; for a Dirichlet cell it is
//! `p_K − p_K^D`.  Because the single-phase incompressible problem is linear, one
//! Newton step `J δp = −r(p⁰)` solves it exactly; [`newton_rhs`] builds the
//! right-hand side of the SPD system actually handed to CG (see `DESIGN.md` §4).

use crate::flux::interfacial_flux;
use mffv_mesh::{CellField, Direction, DirichletSet, Scalar, Transmissibilities};

/// Evaluate the residual `r(p)` of Eq. (3).
pub fn residual<T: Scalar>(
    pressure: &CellField<T>,
    coeffs: &Transmissibilities<T>,
    dirichlet: &DirichletSet,
) -> CellField<T> {
    let mut r = CellField::zeros(pressure.dims());
    residual_into(pressure, coeffs, dirichlet, &mut r);
    r
}

/// [`residual`] into a caller-owned buffer — bitwise the same field, zero
/// allocations.  Every entry of `out` is overwritten (Dirichlet rows
/// included), so a stale buffer never leaks into the result.
pub fn residual_into<T: Scalar>(
    pressure: &CellField<T>,
    coeffs: &Transmissibilities<T>,
    dirichlet: &DirichletSet,
    out: &mut CellField<T>,
) {
    let dims = pressure.dims();
    assert_eq!(dims, coeffs.dims(), "coefficient table dimension mismatch");
    assert_eq!(dims, out.dims(), "residual buffer dimension mismatch");
    for c in dims.iter_cells() {
        let k = dims.linear(c);
        if let Some(pd) = dirichlet.value_at_linear(k) {
            out.set(k, pressure.get(k) - T::from_f64(pd));
            continue;
        }
        let mut acc = T::ZERO;
        let pk = pressure.get(k);
        for dir in Direction::ALL {
            if let Some(n) = dims.neighbor(c, dir) {
                let l = dims.linear(n);
                acc += interfacial_flux(coeffs.get(k, dir), pk, pressure.get(l));
            }
        }
        out.set(k, acc);
    }
}

/// The right-hand side of the SPD Newton system `A δp = b` given the residual at the
/// current pressure: `b_K = r_K` for interior cells and `b_K = 0` for Dirichlet cells
/// (whose update is pinned to zero because the initial pressure already satisfies the
/// Dirichlet condition exactly).
pub fn newton_rhs<T: Scalar>(residual: &CellField<T>, dirichlet: &DirichletSet) -> CellField<T> {
    let mut b = CellField::zeros(residual.dims());
    newton_rhs_into(residual, dirichlet, &mut b);
    b
}

/// [`newton_rhs`] into a caller-owned buffer — bitwise the same field, zero
/// allocations.  Every entry of `out` is overwritten.
pub fn newton_rhs_into<T: Scalar>(
    residual: &CellField<T>,
    dirichlet: &DirichletSet,
    out: &mut CellField<T>,
) {
    let dims = residual.dims();
    assert_eq!(dims, out.dims(), "rhs buffer dimension mismatch");
    for k in 0..dims.num_cells() {
        if dirichlet.contains_linear(k) {
            out.set(k, T::ZERO);
        } else {
            out.set(k, residual.get(k));
        }
    }
}

/// Sum of all residual entries over non-Dirichlet cells — a global mass-balance
/// indicator that must vanish for the converged solution of a closed system fed only
/// by Dirichlet cells.
pub fn interior_mass_imbalance<T: Scalar>(
    residual: &CellField<T>,
    dirichlet: &DirichletSet,
) -> f64 {
    let mut acc = 0.0;
    for k in 0..residual.len() {
        if !dirichlet.contains_linear(k) {
            acc += residual.get(k).to_f64();
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use mffv_mesh::{CellIndex, Dims, DirichletCell};

    #[test]
    fn residual_of_constant_pressure_without_dirichlet_is_zero() {
        let dims = Dims::new(4, 4, 4);
        let coeffs = Transmissibilities::<f64>::uniform(dims, 1.0);
        let p = CellField::constant(dims, 2.0);
        let r = residual(&p, &coeffs, &DirichletSet::empty());
        assert!(r.max_abs() < 1e-14);
    }

    #[test]
    fn dirichlet_rows_measure_deviation_from_prescribed_value() {
        let dims = Dims::new(3, 3, 1);
        let coeffs = Transmissibilities::<f64>::uniform(dims, 1.0);
        let dirichlet = DirichletSet::new(
            dims,
            vec![DirichletCell {
                cell: CellIndex::new(1, 1, 0),
                value: 7.0,
            }],
        );
        let p = CellField::constant(dims, 3.0);
        let r = residual(&p, &coeffs, &dirichlet);
        let k = dims.linear(CellIndex::new(1, 1, 0));
        assert_eq!(r.get(k), 3.0 - 7.0);
    }

    #[test]
    fn linear_profile_between_x_faces_has_zero_interior_residual() {
        // Left face fixed at 1, right face at 0, homogeneous coefficients: the exact
        // solution is a linear pressure drop and its interior residual vanishes.
        let dims = Dims::new(5, 3, 3);
        let coeffs = Transmissibilities::<f64>::uniform(dims, 1.0);
        let dirichlet = DirichletSet::x_faces(dims, 1.0, 0.0);
        let p = CellField::from_fn(dims, |c| 1.0 - c.x as f64 / (dims.nx - 1) as f64);
        let r = residual(&p, &coeffs, &dirichlet);
        for c in dims.iter_cells() {
            let k = dims.linear(c);
            if !dirichlet.contains_linear(k) {
                assert!(
                    r.get(k).abs() < 1e-14,
                    "interior residual at {c:?}: {}",
                    r.get(k)
                );
            } else {
                assert!(
                    r.get(k).abs() < 1e-14,
                    "Dirichlet residual should also vanish"
                );
            }
        }
    }

    #[test]
    fn newton_rhs_zeroes_dirichlet_rows() {
        let dims = Dims::new(3, 3, 2);
        let dirichlet = DirichletSet::source_producer(dims, 1.0, 0.0);
        let r = CellField::constant(dims, 4.0);
        let b = newton_rhs(&r, &dirichlet);
        for k in 0..dims.num_cells() {
            if dirichlet.contains_linear(k) {
                assert_eq!(b.get(k), 0.0);
            } else {
                assert_eq!(b.get(k), 4.0);
            }
        }
    }

    #[test]
    fn mass_imbalance_of_flux_field_sums_interior_only() {
        let dims = Dims::new(2, 2, 1);
        let dirichlet = DirichletSet::new(
            dims,
            vec![DirichletCell {
                cell: CellIndex::new(0, 0, 0),
                value: 0.0,
            }],
        );
        let r = CellField::from_vec(dims, vec![100.0, 1.0, 2.0, 3.0]);
        assert_eq!(interior_mass_imbalance(&r, &dirichlet), 6.0);
    }
}
