//! Matrix-free geometric multigrid: a V-cycle preconditioner over [`StencilPlan`](crate::plan::StencilPlan).
//!
//! PR 4 brought each CG iteration close to the memory wall, so the next order
//! of magnitude on fig5-class workloads has to come from iteration *count*.
//! This module supplies it: a cell-centered 2:1 geometric hierarchy where every
//! level is just another 7-point [`MatrixFreeOperator`] — same coefficient
//! table shape, same branch-free planned kernels, same determinism contract —
//! so the multigrid smoothers run on exactly the fused slab kernels the fine
//! grid uses.
//!
//! ## Hierarchy construction
//!
//! Each level halves every extent (rounding up), and the coarse operator is
//! **re-discretized** rather than assembled: the coarse face coefficient is
//! half the sum of the fine-face coefficients crossing the coarse interface,
//!
//! ```text
//! Υc(C→D) = ½ · Σ { Υf(a→b) : a ∈ C, b ∈ D adjacent }
//! ```
//!
//! which is exact re-discretization for uniform coefficients (the transverse
//! sum doubles the face area, the ½ accounts for the doubled center distance)
//! and, because the fine table already carries the harmonic averages of Eq.
//! (4), inherits their treatment of heterogeneity.  The coarse table stays
//! symmetric and nonnegative, so every level is again an SPD Dirichlet-
//! eliminated 7-point operator and [`StencilPlan`](crate::plan::StencilPlan) applies unchanged.  A
//! coarse cell is Dirichlet when any of its (up to eight) children is; a
//! transient diagonal shift coarsens by summing the children's entries —
//! exactly the aggregation of the accumulation term `V·c_t/Δt`.
//!
//! ## Cycle
//!
//! * **Smoother**: weighted Jacobi `z ← z + ω D⁻¹ (r − A z)` with ω = 2/3 —
//!   symmetric, colouring-free, and built on the planned `apply` kernel so
//!   smoothing inherits the bitwise thread-count independence of the fine
//!   operator.
//! * **Transfer**: trilinear prolongation (per-axis weights ¾/¼, clamped at
//!   boundaries) and its exact transpose as full-weighting restriction.  Both
//!   run as branch-free precomputed-weight sweeps in fixed cell order, so
//!   they are bitwise deterministic and never appear in a float-reduction
//!   context (see AUDIT.md on blessed reduction homes).
//! * **Coarsest level** (≤ [`SLAB_CELLS`] cells): unpreconditioned CG on the
//!   level operator's fused kernels, driven to a tight relative tolerance so
//!   the V-cycle stays (numerically) a fixed linear operation.
//!
//! The V-cycle uses the same pre- and post-smoother, `R = Pᵀ` and symmetric
//! level operators, so `M⁻¹` is symmetric — the property PCG needs and the
//! property the proptests pin.

use crate::matrix_free::MatrixFreeOperator;
use crate::operator::{LinearOperator, Preconditioner};
use crate::plan::{det_norm_squared, SLAB_CELLS};
use mffv_mesh::{CellField, Dims, Direction, DirichletCell, DirichletSet, Scalar};
use mffv_telemetry::Span;
use std::cell::RefCell;
use std::collections::BTreeMap;

/// Tuning knobs of the V-cycle.  The defaults are the configuration every
/// backend ships: V(2,2) with ω = 2/3 weighted Jacobi and a coarsest level
/// solved to near machine precision.  Two sweeps per side keep the PCG
/// iteration count flat (within 1.5x) from 32³ to 128³ on the paper grid
/// where V(1,1) grows past it, at essentially the same wall time per solve.
#[derive(Clone, Copy, Debug)]
pub struct MgConfig {
    /// Damping factor of the weighted-Jacobi smoother.
    pub omega: f64,
    /// Pre-smoothing sweeps per level.
    pub pre_sweeps: usize,
    /// Post-smoothing sweeps per level.
    pub post_sweeps: usize,
    /// Stop coarsening once a level has at most this many cells (default
    /// [`SLAB_CELLS`], the planned-kernel slab size).
    pub coarse_cells: usize,
    /// Relative `rᵀr` reduction demanded of the coarsest-level CG solve.
    pub coarse_rr_reduction: f64,
    /// Iteration cap of the coarsest-level CG solve.
    pub coarse_max_iterations: usize,
}

impl Default for MgConfig {
    fn default() -> Self {
        Self {
            omega: 2.0 / 3.0,
            pre_sweeps: 2,
            post_sweeps: 2,
            coarse_cells: SLAB_CELLS,
            coarse_rr_reduction: 1e-24,
            coarse_max_iterations: 4 * SLAB_CELLS,
        }
    }
}

/// Per-axis transfer weights of one fine index: the two coarse indices it
/// interpolates from (clamped at the boundary, where they may coincide) and
/// their trilinear weights.  Weights are dyadic (¾/¼ in the interior), so
/// they are exact in both `f32` and `f64`.
#[derive(Clone, Copy, Debug)]
struct AxisWeights<T> {
    lo: usize,
    hi: usize,
    w_lo: T,
    w_hi: T,
}

fn axis_weights<T: Scalar>(n_fine: usize, n_coarse: usize) -> Vec<AxisWeights<T>> {
    (0..n_fine)
        .map(|f| {
            // Cell centers: fine cell f sits at (f + ½)·h, coarse cell c at
            // (2c + 1)·h; in coarse index space the fine center is at
            // t = (f + ½)/2 − ½.
            let t = (f as f64 + 0.5) * 0.5 - 0.5;
            let i0 = t.floor() as isize;
            let w_hi = t - i0 as f64;
            let hi_max = n_coarse as isize - 1;
            AxisWeights {
                lo: i0.clamp(0, hi_max) as usize,
                hi: (i0 + 1).clamp(0, hi_max) as usize,
                w_lo: T::from_f64(1.0 - w_hi),
                w_hi: T::from_f64(w_hi),
            }
        })
        .collect()
}

/// Trilinear transfer between one level and the next coarser one.
#[derive(Clone, Debug)]
struct Transfer<T> {
    coarse_dims: Dims,
    x: Vec<AxisWeights<T>>,
    y: Vec<AxisWeights<T>>,
    z: Vec<AxisWeights<T>>,
}

impl<T: Scalar> Transfer<T> {
    fn new(fine: Dims, coarse: Dims) -> Self {
        Self {
            coarse_dims: coarse,
            x: axis_weights(fine.nx, coarse.nx),
            y: axis_weights(fine.ny, coarse.ny),
            z: axis_weights(fine.nz, coarse.nz),
        }
    }

    /// Full-weighting restriction `rc = Pᵀ rf`: a fixed-order scatter of each
    /// fine cell into its (up to) eight coarse neighbours.  Sequential and
    /// branch-free in the inner loop, so bitwise deterministic for every
    /// thread count by construction.
    fn restrict(&self, fine: &CellField<T>, coarse: &mut CellField<T>) {
        coarse.fill(T::ZERO);
        let cd = self.coarse_dims;
        let (cxs, cys) = (1usize, cd.nx);
        let czs = cd.nx * cd.ny;
        let rf = fine.as_slice();
        let rc = coarse.as_mut_slice();
        let mut f = 0usize;
        for wz in &self.z {
            for wy in &self.y {
                let base00 = wy.lo * cys + wz.lo * czs;
                let base01 = wy.lo * cys + wz.hi * czs;
                let base10 = wy.hi * cys + wz.lo * czs;
                let base11 = wy.hi * cys + wz.hi * czs;
                let w00 = wy.w_lo * wz.w_lo;
                let w01 = wy.w_lo * wz.w_hi;
                let w10 = wy.w_hi * wz.w_lo;
                let w11 = wy.w_hi * wz.w_hi;
                for wx in &self.x {
                    let v = rf[f];
                    f += 1;
                    let vl = wx.w_lo * v;
                    let vh = wx.w_hi * v;
                    rc[base00 + wx.lo * cxs] += w00 * vl;
                    rc[base00 + wx.hi * cxs] += w00 * vh;
                    rc[base10 + wx.lo * cxs] += w10 * vl;
                    rc[base10 + wx.hi * cxs] += w10 * vh;
                    rc[base01 + wx.lo * cxs] += w01 * vl;
                    rc[base01 + wx.hi * cxs] += w01 * vh;
                    rc[base11 + wx.lo * cxs] += w11 * vl;
                    rc[base11 + wx.hi * cxs] += w11 * vh;
                }
            }
        }
    }

    /// Trilinear prolongation-and-correct `zf += P ec`: a fixed-order gather
    /// of the eight surrounding coarse values into each fine cell.
    fn prolong_add(&self, coarse: &CellField<T>, fine: &mut CellField<T>) {
        let cd = self.coarse_dims;
        let cys = cd.nx;
        let czs = cd.nx * cd.ny;
        let ec = coarse.as_slice();
        let zf = fine.as_mut_slice();
        let mut f = 0usize;
        for wz in &self.z {
            for wy in &self.y {
                let base00 = wy.lo * cys + wz.lo * czs;
                let base01 = wy.lo * cys + wz.hi * czs;
                let base10 = wy.hi * cys + wz.lo * czs;
                let base11 = wy.hi * cys + wz.hi * czs;
                let w00 = wy.w_lo * wz.w_lo;
                let w01 = wy.w_lo * wz.w_hi;
                let w10 = wy.w_hi * wz.w_lo;
                let w11 = wy.w_hi * wz.w_hi;
                for wx in &self.x {
                    let lo = w00 * ec[base00 + wx.lo]
                        + w10 * ec[base10 + wx.lo]
                        + w01 * ec[base01 + wx.lo]
                        + w11 * ec[base11 + wx.lo];
                    let hi = w00 * ec[base00 + wx.hi]
                        + w10 * ec[base10 + wx.hi]
                        + w01 * ec[base01 + wx.hi]
                        + w11 * ec[base11 + wx.hi];
                    zf[f] += wx.w_lo * lo + wx.w_hi * hi;
                    f += 1;
                }
            }
        }
    }
}

/// One level of the hierarchy: a planned 7-point operator plus the smoother
/// diagonal and (except on the coarsest level) the transfer downward.
#[derive(Clone, Debug)]
struct MgLevel<T: Scalar> {
    operator: MatrixFreeOperator<T>,
    /// `1/diag(A)` with 1 on Dirichlet rows (and on degenerate rows).
    inv_diag: Vec<T>,
    transfer: Option<Transfer<T>>,
}

impl<T: Scalar> MgLevel<T> {
    fn rebuild_inv_diag(&mut self) {
        let dims = self.operator.dims();
        let coeffs = self.operator.coefficients();
        let shift = self.operator.diagonal_shift();
        let mut inv = vec![T::ONE; dims.num_cells()];
        for c in dims.iter_cells() {
            let k = dims.linear(c);
            if self.operator.is_dirichlet(k) {
                continue;
            }
            let mut acc = T::ZERO;
            for dir in Direction::ALL {
                if dims.neighbor(c, dir).is_some() {
                    acc += coeffs.get(k, dir);
                }
            }
            if let Some(d) = shift {
                acc += d[k];
            }
            if acc.to_f64() > 0.0 {
                inv[k] = T::ONE / acc;
            }
        }
        self.inv_diag = inv;
    }
}

/// Per-level scratch vectors, reused across applies so a V-cycle allocates
/// nothing.  Every buffer is fully overwritten before use.
#[derive(Clone, Debug)]
struct LevelWorkspace<T: Scalar> {
    /// The level's right-hand side (the restricted residual).
    r: CellField<T>,
    /// The level's solution / correction.
    z: CellField<T>,
    /// `A z` scratch, reused to hold the pre-smoothed residual.
    ax: CellField<T>,
}

/// The geometric-multigrid V-cycle preconditioner (the tentpole of the MG
/// work): `apply` runs one V(ν₁,ν₂) cycle of the hierarchy described in the
/// [module docs](self) and is a symmetric positive operation suitable as the
/// `M⁻¹` of PCG.
#[derive(Debug)]
pub struct MultigridVcycle<T: Scalar> {
    levels: Vec<MgLevel<T>>,
    config: MgConfig,
    omega: T,
    workspace: RefCell<Vec<LevelWorkspace<T>>>,
}

impl<T: Scalar> MultigridVcycle<T> {
    /// Build the hierarchy for a fine-level coefficient table and Dirichlet
    /// set.  `threads` is forwarded to every level's planned kernels; results
    /// are bitwise identical for every thread count.
    pub fn new(
        coeffs: mffv_mesh::Transmissibilities<T>,
        dirichlet: &DirichletSet,
        threads: usize,
        config: MgConfig,
    ) -> Self {
        let fine = MatrixFreeOperator::new(coeffs, dirichlet).with_threads(threads);
        let mut levels = vec![MgLevel {
            operator: fine,
            inv_diag: Vec::new(),
            transfer: None,
        }];
        let mut dirichlet = dirichlet.clone();
        for _ in 0..64 {
            // audit: allow(panic) — invariant: `levels` starts with the fine level
            let finest = levels.last().expect("hierarchy is never empty");
            let fine_dims = finest.operator.dims();
            if fine_dims.num_cells() <= config.coarse_cells.max(1) {
                break;
            }
            let coarse_dims = Dims::new(
                fine_dims.nx.div_ceil(2),
                fine_dims.ny.div_ceil(2),
                fine_dims.nz.div_ceil(2),
            );
            if coarse_dims == fine_dims {
                break;
            }
            let coarse_dirichlet = coarsen_dirichlet(&dirichlet, fine_dims, coarse_dims);
            // audit: allow(panic) — invariant: `levels` starts with the fine level
            let fine_level = levels.last_mut().expect("hierarchy is never empty");
            let coarse_coeffs =
                coarsen_coefficients(fine_level.operator.coefficients(), coarse_dims);
            fine_level.transfer = Some(Transfer::new(fine_dims, coarse_dims));
            let coarse_op =
                MatrixFreeOperator::new(coarse_coeffs, &coarse_dirichlet).with_threads(threads);
            levels.push(MgLevel {
                operator: coarse_op,
                inv_diag: Vec::new(),
                transfer: None,
            });
            dirichlet = coarse_dirichlet;
        }
        for level in &mut levels {
            level.rebuild_inv_diag();
        }
        let workspace = RefCell::new(
            levels
                .iter()
                .map(|l| {
                    let dims = l.operator.dims();
                    LevelWorkspace {
                        r: CellField::zeros(dims),
                        z: CellField::zeros(dims),
                        ax: CellField::zeros(dims),
                    }
                })
                .collect(),
        );
        Self {
            levels,
            config,
            omega: T::from_f64(config.omega),
            workspace,
        }
    }

    /// Build from a workload, converting the coefficient table to precision
    /// `T` (mirrors [`MatrixFreeOperator::from_workload`]).
    pub fn from_workload(workload: &mffv_mesh::Workload, threads: usize, config: MgConfig) -> Self {
        Self::new(
            workload.transmissibility().convert(),
            workload.dirichlet(),
            threads,
            config,
        )
    }

    /// Number of levels in the hierarchy (≥ 1; the fine grid is level 0).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Grid extents of a level.
    pub fn level_dims(&self, level: usize) -> Dims {
        self.levels[level].operator.dims()
    }

    /// The cycle configuration.
    pub fn config(&self) -> &MgConfig {
        &self.config
    }

    /// Install a transient diagonal shift on the fine level and propagate it
    /// down the hierarchy: the coarse shift of a cell is the **sum** of its
    /// children's entries — the aggregation of the accumulation term
    /// `V·c_t/Δt` (plus well indices).  Coefficient tables, plans and
    /// transfers are untouched, so swapping the `Δt`-dependent diagonal
    /// between transient steps costs only the diagonal rebuild.
    pub fn set_diagonal_shift(&mut self, diag: &CellField<f64>) {
        let mut shift = diag.clone();
        for l in 0..self.levels.len() {
            self.levels[l].operator.set_diagonal_shift(&shift);
            self.levels[l].rebuild_inv_diag();
            if l + 1 == self.levels.len() {
                break;
            }
            let fine_dims = self.levels[l].operator.dims();
            let coarse_dims = self.levels[l + 1].operator.dims();
            shift = coarsen_shift(&shift, fine_dims, coarse_dims);
        }
    }

    /// Drop the diagonal shift on every level, restoring the steady hierarchy.
    pub fn clear_diagonal_shift(&mut self) {
        for level in &mut self.levels {
            level.operator.clear_diagonal_shift();
            level.rebuild_inv_diag();
        }
    }

    /// One V-cycle `z = M⁻¹ r`, with `mg.vcycle` / per-level `mg.level`
    /// telemetry spans when `span` is recording.  Tracing never changes the
    /// arithmetic.
    pub fn apply_cycle(&self, r: &CellField<T>, z: &mut CellField<T>, span: &Span) {
        let fine_dims = self.levels[0].operator.dims();
        assert_eq!(r.dims(), fine_dims, "residual dimension mismatch");
        assert_eq!(z.dims(), fine_dims, "output dimension mismatch");
        let vspan = span.child("mg.vcycle");
        let mut ws = self.workspace.borrow_mut();
        // Seed the fine level's rhs; Dirichlet entries are zeroed so every
        // level solves a homogeneous-Dirichlet error equation.
        ws[0].r.as_mut_slice().copy_from_slice(r.as_slice());
        self.zero_dirichlet(0, &mut ws[0].r);
        self.cycle(0, &mut ws, &vspan);
        z.as_mut_slice().copy_from_slice(ws[0].z.as_slice());
        vspan.finish();
    }

    fn cycle(&self, l: usize, ws: &mut [LevelWorkspace<T>], span: &Span) {
        let lspan = span.child_on_lane("mg.level", l as u32);
        let level = &self.levels[l];
        let coarsest = l + 1 == self.levels.len();
        if coarsest {
            // audit: allow(panic) — invariant: one workspace per level, ws is never empty here
            let (head, _) = ws.split_first_mut().expect("workspace per level");
            self.coarse_solve(level, head);
            lspan.finish();
            return;
        }
        // audit: allow(panic) — invariant: one workspace per level, ws is never empty here
        let (head, rest) = ws.split_first_mut().expect("workspace per level");

        // Pre-smooth from the zero initial guess: the first sweep collapses
        // to z = ω D⁻¹ r (A·0 = 0), later sweeps do the full correction.
        head.z.fill(T::ZERO);
        self.smooth_first(level, &head.r, &mut head.z);
        for _ in 1..self.config.pre_sweeps {
            self.smooth(level, &head.r, &mut head.z, &mut head.ax);
        }

        // Fine residual rf = r − A z, written into the ax scratch.
        level.operator.apply(&head.z, &mut head.ax);
        {
            let rf = head.ax.as_mut_slice();
            let r = head.r.as_slice();
            for k in 0..rf.len() {
                rf[k] = r[k] - rf[k];
            }
        }

        // Restrict, recurse, correct.
        // audit: allow(panic) — invariant: every non-coarsest level was built with a transfer
        let transfer = level.transfer.as_ref().expect("non-coarsest level");
        transfer.restrict(&head.ax, &mut rest[0].r);
        self.zero_dirichlet(l + 1, &mut rest[0].r);
        self.cycle(l + 1, rest, span);
        transfer.prolong_add(&rest[0].z, &mut head.z);
        self.zero_dirichlet(l, &mut head.z);

        // Post-smooth (same smoother: the cycle stays symmetric).
        for _ in 0..self.config.post_sweeps {
            self.smooth(level, &head.r, &mut head.z, &mut head.ax);
        }
        lspan.finish();
    }

    /// One weighted-Jacobi sweep `z ← z + ω D⁻¹ (r − A z)`; Dirichlet rows
    /// keep their exact value 0.
    fn smooth(
        &self,
        level: &MgLevel<T>,
        r: &CellField<T>,
        z: &mut CellField<T>,
        ax: &mut CellField<T>,
    ) {
        level.operator.apply(z, ax);
        let zs = z.as_mut_slice();
        let rs = r.as_slice();
        let axs = ax.as_slice();
        for k in 0..zs.len() {
            if !level.operator.is_dirichlet(k) {
                zs[k] += self.omega * level.inv_diag[k] * (rs[k] - axs[k]);
            }
        }
    }

    /// The first sweep from z = 0: `z = ω D⁻¹ r` without the operator apply.
    fn smooth_first(&self, level: &MgLevel<T>, r: &CellField<T>, z: &mut CellField<T>) {
        let zs = z.as_mut_slice();
        let rs = r.as_slice();
        for k in 0..zs.len() {
            if !level.operator.is_dirichlet(k) {
                zs[k] = self.omega * level.inv_diag[k] * rs[k];
            }
        }
    }

    /// Coarsest-level solve: plain CG on the level's fused kernels to a tight
    /// relative tolerance (floored at the precision's attainable accuracy),
    /// with the standard breakdown guards so degenerate levels — singular
    /// operators under an empty Dirichlet set, 1-thin grids — stay finite.
    fn coarse_solve(&self, level: &MgLevel<T>, ws: &mut LevelWorkspace<T>) {
        ws.z.fill(T::ZERO);
        let mut res = ws.r.clone();
        let rr0 = det_norm_squared(&res).to_f64();
        if rr0 <= 0.0 || !rr0.is_finite() {
            return;
        }
        let eps = T::EPSILON.to_f64() * 8.0;
        let threshold = rr0 * self.config.coarse_rr_reduction.max(eps * eps);
        let mut direction = res.clone();
        let mut ad = ws.ax.clone();
        let mut rr = rr0;
        for _ in 0..self.config.coarse_max_iterations {
            let d_ad = level.operator.apply_dot(&direction, &mut ad).to_f64();
            if d_ad <= 0.0 || !d_ad.is_finite() {
                break;
            }
            let alpha = T::from_f64(rr / d_ad);
            let rr_new = level
                .operator
                .cg_update(alpha, &direction, &ad, &mut ws.z, &mut res)
                .to_f64();
            if !rr_new.is_finite() {
                break;
            }
            if rr_new <= threshold {
                break;
            }
            let beta = T::from_f64(rr_new / rr);
            direction.xpby(&res, beta);
            rr = rr_new;
        }
    }

    fn zero_dirichlet(&self, l: usize, field: &mut CellField<T>) {
        let op = &self.levels[l].operator;
        let fs = field.as_mut_slice();
        for (k, v) in fs.iter_mut().enumerate() {
            if op.is_dirichlet(k) {
                *v = T::ZERO;
            }
        }
    }
}

impl<T: Scalar> Preconditioner<T> for MultigridVcycle<T> {
    fn dims(&self) -> Dims {
        self.levels[0].operator.dims()
    }

    fn apply(&self, r: &CellField<T>, z: &mut CellField<T>) {
        self.apply_cycle(r, z, &Span::null());
    }

    fn apply_traced(&self, r: &CellField<T>, z: &mut CellField<T>, span: &Span) {
        self.apply_cycle(r, z, span);
    }

    fn label(&self) -> &'static str {
        "mg"
    }
}

/// Aggregate the fine coefficient table onto the coarse grid: for every fine
/// face whose endpoints have different parents, add half its coefficient to
/// the parent's face in the same direction.  Fixed fine-cell order, explicit
/// accumulation (no iterator reductions — see AUDIT.md).
fn coarsen_coefficients<T: Scalar>(
    fine: &mffv_mesh::Transmissibilities<T>,
    coarse_dims: Dims,
) -> mffv_mesh::Transmissibilities<T> {
    let fine_dims = fine.dims();
    let half = T::from_f64(0.5);
    let mut rows = vec![[T::ZERO; 6]; coarse_dims.num_cells()];
    for c in fine_dims.iter_cells() {
        let k = fine_dims.linear(c);
        let parent = coarse_dims.linear(parent_of(c, coarse_dims));
        for dir in Direction::ALL {
            if let Some(n) = fine_dims.neighbor(c, dir) {
                let nparent = coarse_dims.linear(parent_of(n, coarse_dims));
                if nparent != parent {
                    rows[parent][dir.index()] += half * fine.get(k, dir);
                }
            }
        }
    }
    mffv_mesh::Transmissibilities::from_rows(coarse_dims, rows)
}

/// A coarse cell is Dirichlet when any of its children is.  Values are
/// irrelevant — the hierarchy only ever solves homogeneous error equations —
/// so they coarsen to 0.
fn coarsen_dirichlet(fine: &DirichletSet, fine_dims: Dims, coarse_dims: Dims) -> DirichletSet {
    let _ = fine_dims;
    let mut coarse: BTreeMap<usize, DirichletCell> = BTreeMap::new();
    for dc in fine.cells() {
        let parent = parent_of(dc.cell, coarse_dims);
        coarse
            .entry(coarse_dims.linear(parent))
            .or_insert(DirichletCell {
                cell: parent,
                value: 0.0,
            });
    }
    DirichletSet::new(coarse_dims, coarse.into_values().collect())
}

/// Sum a fine diagonal shift into its parents (fixed fine-cell order).
fn coarsen_shift(fine: &CellField<f64>, fine_dims: Dims, coarse_dims: Dims) -> CellField<f64> {
    let mut coarse = CellField::zeros(coarse_dims);
    for c in fine_dims.iter_cells() {
        let k = fine_dims.linear(c);
        let parent = coarse_dims.linear(parent_of(c, coarse_dims));
        let cs = coarse.as_mut_slice();
        cs[parent] += fine.get(k);
    }
    coarse
}

#[inline]
fn parent_of(c: mffv_mesh::CellIndex, coarse_dims: Dims) -> mffv_mesh::CellIndex {
    mffv_mesh::CellIndex::new(
        (c.x / 2).min(coarse_dims.nx - 1),
        (c.y / 2).min(coarse_dims.ny - 1),
        (c.z / 2).min(coarse_dims.nz - 1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::det_dot;
    use mffv_mesh::permeability::PermeabilityModel;
    use mffv_mesh::workload::{BoundarySpec, WorkloadSpec};
    use mffv_mesh::Transmissibilities;

    fn test_workload(dims: Dims) -> mffv_mesh::Workload {
        WorkloadSpec {
            name: "mg-test".to_string(),
            dims,
            spacing: [1.0, 1.0, 1.0],
            permeability: PermeabilityModel::LogNormal {
                mean_log: 0.0,
                std_log: 1.5,
                seed: 7,
            },
            viscosity: 1.0,
            boundary: BoundarySpec::SourceProducer {
                source_pressure: 1.0,
                producer_pressure: 0.0,
            },
            tolerance: 1e-12,
            max_iterations: 5000,
        }
        .build()
    }

    #[test]
    fn hierarchy_halves_extents_and_stops_at_the_slab() {
        let dims = Dims::new(32, 32, 32);
        let coeffs = Transmissibilities::<f64>::uniform(dims, 1.0);
        let mg = MultigridVcycle::new(coeffs, &DirichletSet::empty(), 1, MgConfig::default());
        assert_eq!(mg.num_levels(), 2);
        assert_eq!(mg.level_dims(0), dims);
        assert_eq!(mg.level_dims(1), Dims::new(16, 16, 16));
        assert!(mg.level_dims(1).num_cells() <= SLAB_CELLS);
    }

    #[test]
    fn axis_weights_partition_unity_and_clamp() {
        for (nf, nc) in [(8usize, 4usize), (7, 4), (1, 1), (2, 1), (5, 3)] {
            let w = axis_weights::<f64>(nf, nc);
            assert_eq!(w.len(), nf);
            for a in &w {
                assert!(a.lo <= a.hi && a.hi < nc);
                assert_eq!(a.w_lo + a.w_hi, 1.0);
                assert!(a.w_lo >= 0.0 && a.w_hi >= 0.0);
            }
        }
    }

    #[test]
    fn restriction_is_the_transpose_of_prolongation() {
        // ⟨P ec, rf⟩ == ⟨ec, Pᵀ rf⟩ for arbitrary vectors: R = Pᵀ exactly.
        let fine = Dims::new(6, 5, 4);
        let coarse = Dims::new(3, 3, 2);
        let t = Transfer::<f64>::new(fine, coarse);
        let rf = CellField::from_fn(fine, |c| {
            ((c.x * 31 + c.y * 17 + c.z * 7) % 13) as f64 - 6.0
        });
        let ec = CellField::from_fn(coarse, |c| ((c.x * 5 + c.y * 3 + c.z) % 7) as f64 - 3.0);
        let mut p_ec = CellField::zeros(fine);
        t.prolong_add(&ec, &mut p_ec);
        let mut rt_rf = CellField::zeros(coarse);
        t.restrict(&rf, &mut rt_rf);
        let lhs = det_dot(&p_ec, &rf);
        let rhs = det_dot(&ec, &rt_rf);
        assert!(
            (lhs - rhs).abs() < 1e-10 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }

    #[test]
    fn coarse_coefficients_rediscretize_the_uniform_laplacian() {
        // Fine T = 1 everywhere: a coarse interface aggregates 4 fine faces
        // at weight ½ → coarse T = 2, exactly the re-discretized operator.
        let dims = Dims::new(8, 8, 8);
        let fine = Transmissibilities::<f64>::uniform(dims, 1.0);
        let coarse_dims = Dims::new(4, 4, 4);
        let coarse = coarsen_coefficients(&fine, coarse_dims);
        let center = coarse_dims.linear(mffv_mesh::CellIndex::new(1, 1, 1));
        for dir in Direction::ALL {
            assert_eq!(coarse.get(center, dir), 2.0);
        }
        assert!(coarse.max_asymmetry() < 1e-14);
    }

    #[test]
    fn vcycle_reduces_the_residual() {
        let w = test_workload(Dims::new(16, 16, 8));
        // Force a genuinely multi-level hierarchy on this small test grid.
        let config = MgConfig {
            coarse_cells: 256,
            ..MgConfig::default()
        };
        let mg = MultigridVcycle::<f64>::from_workload(&w, 1, config);
        assert!(mg.num_levels() >= 2);
        let op = MatrixFreeOperator::<f64>::from_workload(&w);
        // A right-hand side supported away from the Dirichlet cells.
        let mut r = CellField::from_fn(w.dims(), |c| ((c.x + c.y + c.z) % 3) as f64 - 1.0);
        for k in 0..w.dims().num_cells() {
            if w.dirichlet().contains_linear(k) {
                r.set(k, 0.0);
            }
        }
        let mut z = CellField::zeros(w.dims());
        mg.apply_cycle(&r, &mut z, &Span::null());
        assert!(z.all_finite());
        // One V-cycle must beat one damped-Jacobi sweep by a wide margin:
        // residual of the error equation after the cycle.
        let az = op.apply_new(&z);
        let mut after = r.clone();
        after.axpy(-1.0, &az);
        let before = det_norm_squared(&r);
        let after_rr = det_norm_squared(&after);
        assert!(
            after_rr < 0.5 * before,
            "V-cycle only reduced rr from {before} to {after_rr}"
        );
    }

    #[test]
    fn vcycle_inner_product_is_symmetric_and_positive() {
        let w = test_workload(Dims::new(12, 10, 6));
        let config = MgConfig {
            coarse_cells: 64,
            ..MgConfig::default()
        };
        let mg = MultigridVcycle::<f64>::from_workload(&w, 1, config);
        assert!(mg.num_levels() >= 2);
        let dims = w.dims();
        let mask = |mut f: CellField<f64>| {
            for k in 0..dims.num_cells() {
                if w.dirichlet().contains_linear(k) {
                    f.set(k, 0.0);
                }
            }
            f
        };
        let r1 = mask(CellField::from_fn(dims, |c| {
            ((c.x * 3 + c.z) % 5) as f64 - 2.0
        }));
        let r2 = mask(CellField::from_fn(dims, |c| {
            ((c.y * 7 + c.x) % 11) as f64 - 5.0
        }));
        let mut z1 = CellField::zeros(dims);
        let mut z2 = CellField::zeros(dims);
        mg.apply_cycle(&r1, &mut z1, &Span::null());
        mg.apply_cycle(&r2, &mut z2, &Span::null());
        let a = det_dot(&r2, &z1);
        let b = det_dot(&r1, &z2);
        let scale = a.abs().max(b.abs()).max(1e-30);
        assert!((a - b).abs() / scale < 1e-8, "asymmetry: {a} vs {b}");
        assert!(det_dot(&r1, &z1) > 0.0);
        assert!(det_dot(&r2, &z2) > 0.0);
    }

    #[test]
    fn diagonal_shift_propagates_by_child_summation() {
        let dims = Dims::new(8, 8, 8);
        let coeffs = Transmissibilities::<f64>::uniform(dims, 1.0);
        let config = MgConfig {
            coarse_cells: 64,
            ..MgConfig::default()
        };
        let mut mg = MultigridVcycle::new(coeffs, &DirichletSet::empty(), 1, config);
        assert_eq!(mg.num_levels(), 2);
        let shift = CellField::constant(dims, 0.5);
        mg.set_diagonal_shift(&shift);
        // 8 children of 0.5 each → coarse shift 4.0 on every coarse cell.
        let coarse_shift = mg.levels[1].operator.diagonal_shift().unwrap();
        for &v in coarse_shift {
            assert_eq!(v, 4.0);
        }
        mg.clear_diagonal_shift();
        assert!(mg.levels[1].operator.diagonal_shift().is_none());
    }

    #[test]
    fn degenerate_one_thin_grids_stay_finite() {
        for dims in [
            Dims::new(1, 1, 64),
            Dims::new(64, 1, 1),
            Dims::new(1, 32, 2),
        ] {
            let coeffs = Transmissibilities::<f64>::uniform(dims, 1.0);
            let mg = MultigridVcycle::new(
                coeffs,
                &DirichletSet::all_faces(dims, 0.0),
                1,
                MgConfig {
                    coarse_cells: 8,
                    ..MgConfig::default()
                },
            );
            let r = CellField::from_fn(dims, |c| (c.x + c.y + c.z) as f64 * 0.25);
            let mut z = CellField::zeros(dims);
            mg.apply_cycle(&r, &mut z, &Span::null());
            assert!(z.all_finite(), "{dims:?}");
        }
    }
}
