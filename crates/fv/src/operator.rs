//! The linear-operator abstraction shared by the matrix-free and assembled paths.
//!
//! The CG solver (Algorithm 1) only ever needs to *apply* the Jacobian to a vector.
//! [`LinearOperator`] captures exactly that, so the same solver runs unchanged on
//! top of the matrix-free kernel (Algorithm 2), the assembled CSR baseline, the
//! GPU-style reference and the dataflow fabric implementation.

use crate::plan::{det_dot, det_norm_squared};
use mffv_mesh::{CellField, Dims, Scalar};
use mffv_telemetry::Span;

/// Something that can compute `y = A x` for cell-sized vectors.
///
/// Beyond the plain apply, the trait carries the two **fused CG kernels** the
/// host Krylov loops are built on — `apply` + `dᵀ(A d)` in one pass, and
/// `x += α d` / `r −= α (A d)` / `rᵀr` in a second pass.  The default
/// implementations run the unfused passes with the deterministic slab-ordered
/// reductions of [`crate::plan`]; implementations with a precomputed plan
/// (the [`MatrixFreeOperator`](crate::MatrixFreeOperator)) override them with
/// genuinely fused, multithreaded single-pass kernels that are **bitwise
/// identical** to these defaults.  Solver iterates therefore do not depend on
/// which implementation (or thread count) computed them.
pub trait LinearOperator<T: Scalar> {
    /// Grid extents of the vectors this operator acts on.
    fn dims(&self) -> Dims;

    /// Compute `y = A x`. `y` must already have the right dimensions.
    fn apply(&self, x: &CellField<T>, y: &mut CellField<T>);

    /// Convenience wrapper allocating the output field.
    fn apply_new(&self, x: &CellField<T>) -> CellField<T> {
        let mut y = CellField::zeros(self.dims());
        self.apply(x, &mut y);
        y
    }

    /// Number of unknowns.
    fn num_rows(&self) -> usize {
        self.dims().num_cells()
    }

    /// Fused CG kernel 1: `ad = A d`, returning `dᵀ(A d)` in the
    /// deterministic slab order of [`det_dot`].
    fn apply_dot(&self, d: &CellField<T>, ad: &mut CellField<T>) -> T {
        self.apply(d, ad);
        det_dot(d, ad)
    }

    /// Fused CG kernel 2: `x += α d`, `r −= α (A d)`, returning the new
    /// `rᵀr` in the deterministic slab order of [`det_norm_squared`].
    fn cg_update(
        &self,
        alpha: T,
        d: &CellField<T>,
        ad: &CellField<T>,
        x: &mut CellField<T>,
        r: &mut CellField<T>,
    ) -> T {
        x.axpy(alpha, d);
        r.axpy(-alpha, ad);
        det_norm_squared(r)
    }
}

/// Something that can apply `z = M⁻¹ r` for an SPD approximation `M ≈ A`.
///
/// This is the abstraction the preconditioned CG loop is written against; the
/// diagonal (Jacobi) preconditioner in `mffv-solver` and the geometric
/// multigrid V-cycle of [`crate::mg`] both implement it.  Implementations
/// must be **fixed linear SPD operations**: the same `r` always produces the
/// bitwise-same `z` regardless of thread count, and the induced inner product
/// `r₁ᵀ M⁻¹ r₂` is symmetric — this is what keeps PCG's short recurrences
/// valid and its residual histories reproducible.
pub trait Preconditioner<T: Scalar> {
    /// Grid extents of the vectors this preconditioner acts on.
    fn dims(&self) -> Dims;

    /// Apply `z = M⁻¹ r`. `z` must already have the right dimensions.
    fn apply(&self, r: &CellField<T>, z: &mut CellField<T>);

    /// Apply `z = M⁻¹ r` under a telemetry span.  The default ignores the
    /// span; structured preconditioners (the multigrid V-cycle) override it
    /// to emit their phase spans.  Tracing never changes the arithmetic:
    /// traced and untraced applies are bitwise identical.
    fn apply_traced(&self, r: &CellField<T>, z: &mut CellField<T>, span: &Span) {
        let _ = span;
        self.apply(r, z);
    }

    /// Short stable label for reports and sweep names ("jacobi", "mg", …).
    fn label(&self) -> &'static str;
}

/// A scaled identity operator, useful in solver unit tests.
#[derive(Clone, Copy, Debug)]
pub struct ScaledIdentity<T: Scalar> {
    dims: Dims,
    scale: T,
}

impl<T: Scalar> ScaledIdentity<T> {
    /// Create `scale · I` on a grid.
    pub fn new(dims: Dims, scale: T) -> Self {
        Self { dims, scale }
    }
}

impl<T: Scalar> LinearOperator<T> for ScaledIdentity<T> {
    fn dims(&self) -> Dims {
        self.dims
    }

    fn apply(&self, x: &CellField<T>, y: &mut CellField<T>) {
        assert_eq!(x.dims(), self.dims);
        assert_eq!(y.dims(), self.dims);
        for i in 0..x.len() {
            y.set(i, self.scale * x.get(i));
        }
    }
}

/// Verify that an operator is symmetric by probing it with random-ish basis
/// combinations: returns the largest relative violation of `⟨Ax, y⟩ = ⟨x, Ay⟩` over
/// `num_probes` deterministic probe pairs.  Used by tests on every operator
/// implementation in the workspace.
pub fn symmetry_defect<T: Scalar, Op: LinearOperator<T>>(op: &Op, num_probes: usize) -> f64 {
    let dims = op.dims();
    let n = dims.num_cells();
    let mut worst = 0.0f64;
    for probe in 0..num_probes {
        // Cheap deterministic pseudo-random vectors (LCG) so the check needs no RNG
        // dependency and is reproducible.
        let mut state = 0x9E37_79B9u64.wrapping_add(probe as u64);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let x = CellField::from_vec(dims, (0..n).map(|_| T::from_f64(next())).collect());
        let y = CellField::from_vec(dims, (0..n).map(|_| T::from_f64(next())).collect());
        let ax = op.apply_new(&x);
        let ay = op.apply_new(&y);
        let lhs = ax.dot(&y).to_f64();
        let rhs = x.dot(&ay).to_f64();
        let denom = lhs.abs().max(rhs.abs()).max(1e-30);
        worst = worst.max((lhs - rhs).abs() / denom);
    }
    worst
}

/// Estimate whether an operator is positive definite by evaluating the Rayleigh
/// quotient `⟨Ax, x⟩ / ⟨x, x⟩` on `num_probes` deterministic probe vectors; returns
/// the smallest quotient found (positive for an SPD operator unless a probe happens
/// to hit the null space).
pub fn min_rayleigh_quotient<T: Scalar, Op: LinearOperator<T>>(op: &Op, num_probes: usize) -> f64 {
    let dims = op.dims();
    let n = dims.num_cells();
    let mut min_q = f64::INFINITY;
    for probe in 0..num_probes {
        let mut state = 0xDEAD_BEEFu64.wrapping_add((probe as u64) << 7);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let x = CellField::from_vec(dims, (0..n).map(|_| T::from_f64(next())).collect());
        let ax = op.apply_new(&x);
        let q = ax.dot(&x).to_f64() / x.norm_squared().to_f64().max(1e-300);
        min_q = min_q.min(q);
    }
    min_q
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_identity_applies() {
        let dims = Dims::new(3, 3, 3);
        let op = ScaledIdentity::new(dims, 2.5f64);
        let x = CellField::constant(dims, 2.0);
        let y = op.apply_new(&x);
        assert!(y.as_slice().iter().all(|&v| v == 5.0));
        assert_eq!(op.num_rows(), 27);
    }

    #[test]
    fn identity_is_symmetric_and_positive() {
        let dims = Dims::new(4, 3, 2);
        let op = ScaledIdentity::new(dims, 3.0f64);
        assert!(symmetry_defect(&op, 4) < 1e-12);
        let q = min_rayleigh_quotient(&op, 4);
        assert!(
            (q - 3.0).abs() < 1e-9,
            "Rayleigh quotient of 3·I must be 3, got {q}"
        );
    }

    #[test]
    fn negative_identity_detected_as_non_positive() {
        let dims = Dims::new(3, 3, 3);
        let op = ScaledIdentity::new(dims, -1.0f64);
        assert!(min_rayleigh_quotient(&op, 2) < 0.0);
    }
}
