//! Darcy velocities, interfacial flux fields and well rates.
//!
//! The governing system (Eq. 1) couples Darcy's law `u = −(κ/μ) ∇p` with mass
//! balance `∇·u = 0`.  Once the pressure solve of Algorithm 1 converges, the
//! quantities of engineering interest in the paper's CCS setting are derived from
//! the interfacial fluxes: the injection/production rates at the Dirichlet wells and
//! the divergence-free property of the flux field (discrete mass conservation).
//! This module reconstructs those quantities from a converged pressure field and is
//! used by the examples and by conservation tests.

use crate::flux::interfacial_flux;
use mffv_mesh::{CellField, Direction, DirichletSet, Scalar, Transmissibilities};

/// All six outward interfacial fluxes of every cell: `fluxes[cell][dir] = f_K,dir`
/// with the Eq. (4) sign convention (positive = flow *into* cell K).
#[derive(Clone, Debug, PartialEq)]
pub struct FluxField<T: Scalar> {
    dims: mffv_mesh::Dims,
    fluxes: Vec<[T; 6]>,
}

impl<T: Scalar> FluxField<T> {
    /// Compute the interfacial fluxes of a pressure field.
    pub fn compute(pressure: &CellField<T>, coeffs: &Transmissibilities<T>) -> Self {
        let dims = pressure.dims();
        assert_eq!(dims, coeffs.dims(), "coefficient table dimension mismatch");
        let mut fluxes = vec![[T::ZERO; 6]; dims.num_cells()];
        for c in dims.iter_cells() {
            let k = dims.linear(c);
            let pk = pressure.get(k);
            for dir in Direction::ALL {
                if let Some(n) = dims.neighbor(c, dir) {
                    let l = dims.linear(n);
                    fluxes[k][dir.index()] =
                        interfacial_flux(coeffs.get(k, dir), pk, pressure.get(l));
                }
            }
        }
        Self { dims, fluxes }
    }

    /// Grid extents.
    pub fn dims(&self) -> mffv_mesh::Dims {
        self.dims
    }

    /// The flux through the face of `cell_linear` towards `dir` (positive into the
    /// cell).
    pub fn get(&self, cell_linear: usize, dir: Direction) -> T {
        self.fluxes[cell_linear][dir.index()]
    }

    /// Net flux into a cell (the discrete divergence; zero for interior cells of a
    /// converged incompressible solution).
    pub fn net_into_cell(&self, cell_linear: usize) -> T {
        let mut acc = T::ZERO;
        for v in self.fluxes[cell_linear] {
            acc += v;
        }
        acc
    }

    /// Maximum |net flux| over all non-Dirichlet cells — the discrete mass-balance
    /// defect of the pressure field.
    pub fn max_mass_defect(&self, dirichlet: &DirichletSet) -> f64 {
        let mut worst = 0.0f64;
        for k in 0..self.dims.num_cells() {
            if !dirichlet.contains_linear(k) {
                worst = worst.max(self.net_into_cell(k).to_f64().abs());
            }
        }
        worst
    }

    /// Antisymmetry defect: `f_KL + f_LK` should vanish for every interior face.
    pub fn max_antisymmetry(&self) -> f64 {
        let mut worst = 0.0f64;
        for c in self.dims.iter_cells() {
            let k = self.dims.linear(c);
            for dir in Direction::ALL {
                if let Some(n) = self.dims.neighbor(c, dir) {
                    let l = self.dims.linear(n);
                    let a = self.get(k, dir).to_f64();
                    let b = self.get(l, dir.opposite()).to_f64();
                    worst = worst.max((a + b).abs());
                }
            }
        }
        worst
    }

    /// Net outflow from the set of Dirichlet cells (positive = the wells inject mass
    /// into the rest of the domain); for a converged solution the injectors'
    /// outflow balances the producers' inflow.
    pub fn well_rate(&self, dirichlet: &DirichletSet) -> f64 {
        let mut total = 0.0f64;
        for k in 0..self.dims.num_cells() {
            if dirichlet.contains_linear(k) {
                // Outflow from the well cell = −(net inflow), excluding faces towards
                // other Dirichlet cells (they are internal to the well).
                let c = self.dims.unlinear(k);
                for dir in Direction::ALL {
                    if let Some(n) = self.dims.neighbor(c, dir) {
                        let l = self.dims.linear(n);
                        if !dirichlet.contains_linear(l) {
                            total -= self.get(k, dir).to_f64();
                        }
                    }
                }
            }
        }
        total
    }

    /// Total injection rate (sum of positive per-cell outflows over Dirichlet cells)
    /// and production rate (sum of negative ones), returned as
    /// `(injection, production)` with `injection ≥ 0 ≥ production`.
    pub fn injection_production_split(&self, dirichlet: &DirichletSet) -> (f64, f64) {
        let mut injection = 0.0f64;
        let mut production = 0.0f64;
        for k in 0..self.dims.num_cells() {
            if !dirichlet.contains_linear(k) {
                continue;
            }
            let c = self.dims.unlinear(k);
            let mut outflow = 0.0f64;
            for dir in Direction::ALL {
                if let Some(n) = self.dims.neighbor(c, dir) {
                    let l = self.dims.linear(n);
                    if !dirichlet.contains_linear(l) {
                        outflow -= self.get(k, dir).to_f64();
                    }
                }
            }
            if outflow >= 0.0 {
                injection += outflow;
            } else {
                production += outflow;
            }
        }
        (injection, production)
    }
}

/// Cell-centred Darcy velocity components, averaged from the two face fluxes per
/// axis and divided by the face area (Eq. 1a in discrete form).
pub fn cell_velocity<T: Scalar>(
    fluxes: &FluxField<T>,
    mesh: &mffv_mesh::CartesianMesh,
    cell_linear: usize,
) -> [f64; 3] {
    let mut v = [0.0f64; 3];
    for (axis, (plus, minus)) in [
        (Direction::XP, Direction::XM),
        (Direction::YP, Direction::YM),
        (Direction::ZP, Direction::ZM),
    ]
    .iter()
    .enumerate()
    {
        let area = mesh.face_area(*plus);
        // Positive flux through the +face means flow into the cell from the + side,
        // i.e. velocity in the −axis direction; average the two faces.
        let f_plus = fluxes.get(cell_linear, *plus).to_f64();
        let f_minus = fluxes.get(cell_linear, *minus).to_f64();
        v[axis] = 0.5 * (f_minus - f_plus) / area;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::LinearOperator;
    use crate::MatrixFreeOperator;
    use mffv_mesh::workload::WorkloadSpec;
    use mffv_mesh::{CartesianMesh, CellIndex, Dims};

    /// Solve the quickstart problem on the host and return (workload, pressure).
    fn solved_quickstart() -> (mffv_mesh::Workload, CellField<f64>) {
        let w = WorkloadSpec::quickstart().build();
        let op = MatrixFreeOperator::<f64>::from_workload(&w);
        let p0: CellField<f64> = w.initial_pressure();
        let r = crate::residual::residual(&p0, w.transmissibility(), w.dirichlet());
        let b = crate::residual::newton_rhs(&r, w.dirichlet());
        // Plain CG, reimplemented minimally here to avoid a dev-dependency cycle on
        // mffv-solver: the quickstart problem is small enough for a few hundred
        // iterations of the textbook recurrence.
        let dims = w.dims();
        let mut x = CellField::<f64>::zeros(dims);
        let mut resid = b.clone();
        let mut dir = resid.clone();
        let mut ad = CellField::<f64>::zeros(dims);
        let mut rr = resid.norm_squared();
        for _ in 0..5000 {
            if rr < 1e-24 {
                break;
            }
            op.apply(&dir, &mut ad);
            let alpha = rr / dir.dot(&ad);
            x.axpy(alpha, &dir);
            resid.axpy(-alpha, &ad);
            let rr_new = resid.norm_squared();
            dir.xpby(&resid, rr_new / rr);
            rr = rr_new;
        }
        let mut pressure = p0;
        pressure.axpy(1.0, &x);
        (w, pressure)
    }

    #[test]
    fn fluxes_are_antisymmetric_and_conservative_at_convergence() {
        let (w, pressure) = solved_quickstart();
        let coeffs = w.transmissibility().clone();
        let fluxes = FluxField::compute(&pressure, &coeffs);
        assert!(
            fluxes.max_antisymmetry() < 1e-12,
            "flux antisymmetry violated"
        );
        assert!(
            fluxes.max_mass_defect(w.dirichlet()) < 1e-8,
            "mass defect {} too large",
            fluxes.max_mass_defect(w.dirichlet())
        );
    }

    #[test]
    fn injection_balances_production() {
        let (w, pressure) = solved_quickstart();
        let fluxes = FluxField::compute(&pressure, w.transmissibility());
        let (injection, production) = fluxes.injection_production_split(w.dirichlet());
        assert!(injection > 0.0, "the source must inject");
        assert!(production < 0.0, "the producer must produce");
        assert!(
            (injection + production).abs() < 1e-8 * injection,
            "injection {injection} and production {production} must balance"
        );
        // The net well rate is the same balance, so it must be ~0.
        assert!(fluxes.well_rate(w.dirichlet()).abs() < 1e-8 * injection);
    }

    #[test]
    fn linear_pressure_drop_gives_uniform_x_velocity() {
        // p = 1 - x/(nx-1) on a unit mesh with unit coefficients: flux through every
        // X face is Υλ·Δp = 1/(nx-1), Y/Z fluxes vanish, and the cell velocity points
        // in +X with magnitude Δp/Δx / area.
        let dims = Dims::new(6, 3, 3);
        let mesh = CartesianMesh::unit(dims);
        let coeffs = Transmissibilities::<f64>::uniform(dims, 1.0);
        let p = CellField::from_fn(dims, |c| 1.0 - c.x as f64 / (dims.nx - 1) as f64);
        let fluxes = FluxField::compute(&p, &coeffs);
        let center = dims.linear(CellIndex::new(2, 1, 1));
        let dp = 1.0 / (dims.nx - 1) as f64;
        assert!((fluxes.get(center, Direction::XM) - dp).abs() < 1e-12);
        assert!((fluxes.get(center, Direction::XP) + dp).abs() < 1e-12);
        assert!(fluxes.get(center, Direction::YP).abs() < 1e-12);
        let v = cell_velocity(&fluxes, &mesh, center);
        assert!((v[0] - dp).abs() < 1e-12, "vx = {}", v[0]);
        assert!(v[1].abs() < 1e-12 && v[2].abs() < 1e-12);
        assert!(fluxes.net_into_cell(center).abs() < 1e-12);
    }

    #[test]
    fn constant_pressure_has_zero_fluxes() {
        let dims = Dims::new(4, 4, 4);
        let coeffs = Transmissibilities::<f64>::uniform(dims, 2.5);
        let p = CellField::constant(dims, 7.0);
        let fluxes = FluxField::compute(&p, &coeffs);
        for k in 0..dims.num_cells() {
            assert_eq!(fluxes.net_into_cell(k), 0.0);
            for dir in Direction::ALL {
                assert_eq!(fluxes.get(k, dir), 0.0);
            }
        }
        assert_eq!(fluxes.max_antisymmetry(), 0.0);
    }
}
