//! Matrix-free application of the Jacobian (Eq. 6 / Algorithm 2).
//!
//! "In the matrix-free approach … `J` is never fully assembled and stored.  Instead,
//! local assembly and matrix-vector multiplication are fused" (§II-A).  The outer
//! loop sweeps over cells and the inner loop traverses each cell's six neighbours,
//! exactly as Algorithm 2 prescribes.

use crate::flux::{ax_contribution_spd, jx_contribution_paper};
use crate::operator::LinearOperator;
use crate::plan::{PlanStats, StencilPlan};
use mffv_mesh::{CellField, Dims, Direction, DirichletSet, Scalar, Transmissibilities};

/// The matrix-free FV operator: owns (references to nothing — it clones the
/// coefficient table into the requested precision) everything needed to apply the
/// Jacobian without assembling it.
///
/// At construction the operator precomputes a [`StencilPlan`] — the partition
/// of the grid into branch-free interior x-line runs and a general remainder —
/// so [`apply_spd`](Self::apply_spd) runs the planned kernel by default.  The
/// planned apply is bitwise identical to the naive per-neighbour loop (kept as
/// [`apply_spd_naive`](Self::apply_spd_naive)) for every thread count; see the
/// [`plan`](crate::plan) module for the determinism contract.
#[derive(Clone, Debug)]
pub struct MatrixFreeOperator<T: Scalar> {
    dims: Dims,
    coeffs: Transmissibilities<T>,
    dirichlet_mask: Vec<bool>,
    num_dirichlet: usize,
    plan: StencilPlan,
    threads: usize,
    /// Optional diagonal shift (the transient accumulation + well terms,
    /// `V·c_t/Δt + Σ WI`); entries on Dirichlet rows are forced to zero so
    /// those rows stay the identity.  `None` is the steady operator.
    diagonal: Option<Vec<T>>,
}

impl<T: Scalar> MatrixFreeOperator<T> {
    /// Build the operator from a coefficient table and the Dirichlet set.
    pub fn new(coeffs: Transmissibilities<T>, dirichlet: &DirichletSet) -> Self {
        let dims = coeffs.dims();
        let mut mask = vec![false; dims.num_cells()];
        for (idx, flag) in mask.iter_mut().enumerate() {
            *flag = dirichlet.contains_linear(idx);
        }
        let plan = StencilPlan::new(dims, &mask);
        Self {
            dims,
            coeffs,
            num_dirichlet: plan.stats().dirichlet_cells,
            dirichlet_mask: mask,
            plan,
            threads: 1,
            diagonal: None,
        }
    }

    /// Build from a workload, converting the coefficient table to precision `T`.
    pub fn from_workload(workload: &mffv_mesh::Workload) -> Self {
        Self::new(workload.transmissibility().convert(), workload.dirichlet())
    }

    /// Set the number of scoped threads the planned kernels use (clamped to at
    /// least 1).  Results are bitwise identical for every thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Number of scoped threads the planned kernels use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Augment the operator with a diagonal shift: `A ← A + diag(d)` on
    /// non-Dirichlet rows (entries on Dirichlet rows are zeroed so those
    /// rows stay the identity).  This is the transient accumulation term
    /// `V·c_t/Δt` (plus BHP-well productivity indices) of backward-Euler
    /// stepping; the planned, fused, threaded kernels all honour it
    /// branch-free and stay bitwise identical to the naive shifted loop.
    pub fn with_diagonal_shift(mut self, diag: &CellField<f64>) -> Self {
        self.set_diagonal_shift(diag);
        self
    }

    /// In-place form of [`with_diagonal_shift`](Self::with_diagonal_shift) —
    /// lets time steppers swap the `Δt`-dependent diagonal without
    /// rebuilding the coefficient table or the stencil plan.
    pub fn set_diagonal_shift(&mut self, diag: &CellField<f64>) {
        assert_eq!(diag.dims(), self.dims, "diagonal shift dimension mismatch");
        let mut values: Vec<T> = diag.as_slice().iter().map(|&v| T::from_f64(v)).collect();
        for (k, v) in values.iter_mut().enumerate() {
            if self.dirichlet_mask[k] {
                *v = T::ZERO;
            }
        }
        self.diagonal = Some(values);
    }

    /// Drop the diagonal shift, restoring the steady operator.
    pub fn clear_diagonal_shift(&mut self) {
        self.diagonal = None;
    }

    /// The active diagonal shift, when one is set.
    pub fn diagonal_shift(&self) -> Option<&[T]> {
        self.diagonal.as_deref()
    }

    /// The precomputed stencil execution plan.
    pub fn plan(&self) -> &StencilPlan {
        &self.plan
    }

    /// Summary counters of the stencil plan (fast-path coverage, slab count).
    pub fn plan_stats(&self) -> PlanStats {
        self.plan.stats()
    }

    /// The coefficient table.
    pub fn coefficients(&self) -> &Transmissibilities<T> {
        &self.coeffs
    }

    /// Whether the cell at a linear index is a Dirichlet cell.
    #[inline]
    pub fn is_dirichlet(&self, linear_index: usize) -> bool {
        self.dirichlet_mask[linear_index]
    }

    /// Number of Dirichlet cells (cached at construction).
    pub fn num_dirichlet(&self) -> usize {
        self.num_dirichlet
    }

    /// Literal Eq. (6): `(Jx)_K = Σ_L Υλ (x_L − x_K)` for non-Dirichlet cells and
    /// `x_K` for Dirichlet cells.  Provided for faithfulness tests and for the
    /// residual computation (`r(p)` for interior cells is exactly `(Jp)_K` with the
    /// flux sign of Eq. 3).
    pub fn apply_paper_jx(&self, x: &CellField<T>, y: &mut CellField<T>) {
        self.check_dims(x, y);
        for c in self.dims.iter_cells() {
            let k = self.dims.linear(c);
            if self.dirichlet_mask[k] {
                y.set(k, x.get(k));
                continue;
            }
            let mut acc = T::ZERO;
            let xk = x.get(k);
            for dir in Direction::ALL {
                if let Some(n) = self.dims.neighbor(c, dir) {
                    let l = self.dims.linear(n);
                    acc += jx_contribution_paper(self.coeffs.get(k, dir), xk, x.get(l));
                }
            }
            y.set(k, acc);
        }
    }

    /// The SPD form handed to CG: `(A x)_K = Σ_L Υλ (x_K − x_L·[L ∉ T_D])` for
    /// non-Dirichlet cells and `x_K` for Dirichlet cells (Dirichlet elimination,
    /// `DESIGN.md` §4).
    ///
    /// Runs the planned branch-free kernel on [`threads`](Self::threads)
    /// scoped threads; bitwise identical to
    /// [`apply_spd_naive`](Self::apply_spd_naive) for every thread count.
    pub fn apply_spd(&self, x: &CellField<T>, y: &mut CellField<T>) {
        self.check_dims(x, y);
        self.plan.apply(
            self.coeffs.cell_rows(),
            &self.dirichlet_mask,
            self.diagonal.as_deref(),
            x,
            y,
            self.threads,
        );
    }

    /// The naive per-cell, per-neighbour reference implementation of
    /// [`apply_spd`](Self::apply_spd) (Algorithm 2 as literally written): an
    /// `Option`-checked neighbour lookup and a Dirichlet branch for all six
    /// directions of every cell.  Kept as the equivalence oracle for the
    /// planned kernel and as the benchmark baseline.
    pub fn apply_spd_naive(&self, x: &CellField<T>, y: &mut CellField<T>) {
        self.check_dims(x, y);
        for c in self.dims.iter_cells() {
            let k = self.dims.linear(c);
            if self.dirichlet_mask[k] {
                y.set(k, x.get(k));
                continue;
            }
            let mut acc = T::ZERO;
            let xk = x.get(k);
            for dir in Direction::ALL {
                if let Some(n) = self.dims.neighbor(c, dir) {
                    let l = self.dims.linear(n);
                    acc += ax_contribution_spd(
                        self.coeffs.get(k, dir),
                        xk,
                        x.get(l),
                        self.dirichlet_mask[l],
                    );
                }
            }
            if let Some(diag) = &self.diagonal {
                acc += diag[k] * xk;
            }
            y.set(k, acc);
        }
    }

    fn check_dims(&self, x: &CellField<T>, y: &CellField<T>) {
        assert_eq!(x.dims(), self.dims, "input field dimension mismatch");
        assert_eq!(y.dims(), self.dims, "output field dimension mismatch");
    }
}

impl<T: Scalar> LinearOperator<T> for MatrixFreeOperator<T> {
    fn dims(&self) -> Dims {
        self.dims
    }

    fn apply(&self, x: &CellField<T>, y: &mut CellField<T>) {
        self.apply_spd(x, y);
    }

    /// Fused slab-level apply + reduction (bitwise identical to the default
    /// `apply` + `det_dot` sequence, one pass over memory instead of two).
    fn apply_dot(&self, d: &CellField<T>, ad: &mut CellField<T>) -> T {
        self.check_dims(d, ad);
        self.plan.apply_dot(
            self.coeffs.cell_rows(),
            &self.dirichlet_mask,
            self.diagonal.as_deref(),
            d,
            ad,
            self.threads,
        )
    }

    /// Fused slab-level CG update (bitwise identical to the default
    /// axpy/axpy/`det_norm_squared` sequence, one pass over memory instead of
    /// three).
    fn cg_update(
        &self,
        alpha: T,
        d: &CellField<T>,
        ad: &CellField<T>,
        x: &mut CellField<T>,
        r: &mut CellField<T>,
    ) -> T {
        self.plan.cg_update(alpha, d, ad, x, r, self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{min_rayleigh_quotient, symmetry_defect};
    use mffv_mesh::workload::WorkloadSpec;
    use mffv_mesh::{CellIndex, DirichletCell};

    fn small_workload() -> mffv_mesh::Workload {
        WorkloadSpec::quickstart().scaled(2).build()
    }

    #[test]
    fn dirichlet_rows_are_identity() {
        let w = small_workload();
        let op = MatrixFreeOperator::<f64>::from_workload(&w);
        let dims = w.dims();
        let x = CellField::from_fn(dims, |c| (c.x + c.y + c.z) as f64 + 1.0);
        let y = op.apply_new(&x);
        for idx in 0..dims.num_cells() {
            if op.is_dirichlet(idx) {
                assert_eq!(y.get(idx), x.get(idx));
            }
        }
        assert_eq!(op.num_dirichlet(), w.dirichlet().len());
    }

    #[test]
    fn constant_vector_is_in_near_null_space_of_paper_form() {
        // For interior cells away from Dirichlet cells, Eq. (6) applied to a constant
        // vector gives zero (the stencil sums differences).
        let dims = Dims::new(6, 6, 4);
        let coeffs = Transmissibilities::<f64>::uniform(dims, 1.0);
        let op = MatrixFreeOperator::new(coeffs, &DirichletSet::empty());
        let x = CellField::constant(dims, 3.0);
        let mut y = CellField::zeros(dims);
        op.apply_paper_jx(&x, &mut y);
        assert!(y.max_abs() < 1e-14);
        // ... and the SPD form agrees (it is the negation on interior cells).
        let mut z = CellField::zeros(dims);
        op.apply_spd(&x, &mut z);
        assert!(z.max_abs() < 1e-14);
    }

    #[test]
    fn paper_form_is_negative_of_spd_form_without_dirichlet() {
        let dims = Dims::new(5, 4, 3);
        let coeffs = Transmissibilities::<f64>::uniform(dims, 2.0);
        let op = MatrixFreeOperator::new(coeffs, &DirichletSet::empty());
        let x = CellField::from_fn(dims, |c| (c.x * 7 + c.y * 3 + c.z) as f64);
        let mut jx = CellField::zeros(dims);
        let mut ax = CellField::zeros(dims);
        op.apply_paper_jx(&x, &mut jx);
        op.apply_spd(&x, &mut ax);
        for i in 0..dims.num_cells() {
            assert!((jx.get(i) + ax.get(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn spd_form_is_symmetric_positive() {
        let w = small_workload();
        let op = MatrixFreeOperator::<f64>::from_workload(&w);
        assert!(symmetry_defect(&op, 4) < 1e-10);
        assert!(min_rayleigh_quotient(&op, 4) > 0.0);
    }

    #[test]
    fn interior_laplacian_value_matches_hand_computation() {
        // Uniform coefficient 1, x = linear ramp along X: the 7-point stencil applied
        // to a linear function vanishes in the interior (discrete Laplacian of a
        // linear field is zero).
        let dims = Dims::new(5, 5, 5);
        let coeffs = Transmissibilities::<f64>::uniform(dims, 1.0);
        let op = MatrixFreeOperator::new(coeffs, &DirichletSet::empty());
        let x = CellField::from_fn(dims, |c| c.x as f64);
        let y = op.apply_new(&x);
        let center = dims.linear(CellIndex::new(2, 2, 2));
        assert!(y.get(center).abs() < 1e-14);
        // A quadratic along X has a constant second difference of 2 (with the SPD
        // sign the stencil yields -2 · coeff).
        let q = CellField::from_fn(dims, |c| (c.x * c.x) as f64);
        let yq = op.apply_new(&q);
        assert!((yq.get(center) - (-2.0)).abs() < 1e-12);
    }

    #[test]
    fn dirichlet_neighbor_coupling_is_dropped_in_spd_form() {
        let dims = Dims::new(3, 1, 1);
        let coeffs = Transmissibilities::<f64>::uniform(dims, 1.0);
        let dirichlet = DirichletSet::new(
            dims,
            vec![DirichletCell {
                cell: CellIndex::new(0, 0, 0),
                value: 5.0,
            }],
        );
        let op = MatrixFreeOperator::new(coeffs, &dirichlet);
        // x = [10, 1, 2]; middle cell: coeff (x1 - x0_dropped) + coeff (x1 - x2)
        //   = (1 - 0) + (1 - 2) = 0
        let x = CellField::from_vec(dims, vec![10.0, 1.0, 2.0]);
        let y = op.apply_new(&x);
        assert_eq!(y.get(0), 10.0); // Dirichlet row: identity
        assert_eq!(y.get(1), 0.0);
        assert_eq!(y.get(2), 1.0); // (x2 - x1) with only one neighbour inside
    }

    #[test]
    fn diagonal_shift_is_bitwise_planned_vs_naive_and_stays_spd() {
        let w = WorkloadSpec::quickstart().scaled(2).build();
        let dims = w.dims();
        let diag = CellField::from_fn(dims, |c| 0.25 + (c.x + 2 * c.y + 3 * c.z) as f64 * 0.125);
        let base = MatrixFreeOperator::<f64>::from_workload(&w);
        let x = CellField::from_fn(dims, |c| (c.x as f64 - 1.5 * c.y as f64) * 0.5 + c.z as f64);

        for threads in [1, 2, 8] {
            let op = base
                .clone()
                .with_threads(threads)
                .with_diagonal_shift(&diag);
            let mut planned = CellField::zeros(dims);
            op.apply_spd(&x, &mut planned);
            let mut naive = CellField::zeros(dims);
            op.apply_spd_naive(&x, &mut naive);
            for k in 0..dims.num_cells() {
                assert_eq!(
                    planned.get(k).to_bits(),
                    naive.get(k).to_bits(),
                    "cell {k}, threads {threads}"
                );
            }
            // Dirichlet rows stay the identity even with a diagonal set.
            for k in 0..dims.num_cells() {
                if op.is_dirichlet(k) {
                    assert_eq!(planned.get(k), x.get(k));
                }
            }
            assert!(symmetry_defect(&op, 3) < 1e-10);
            assert!(min_rayleigh_quotient(&op, 3) > 0.0);
        }

        // The shift is exactly +diag·x on non-Dirichlet rows.
        let op = base.clone().with_diagonal_shift(&diag);
        let plain = base.apply_new(&x);
        let shifted = op.apply_new(&x);
        for k in 0..dims.num_cells() {
            let expect = if op.is_dirichlet(k) {
                plain.get(k)
            } else {
                plain.get(k) + diag.get(k) * x.get(k)
            };
            assert_eq!(shifted.get(k).to_bits(), expect.to_bits());
        }

        // set/clear round-trips back to the steady operator.
        let mut op = op;
        op.clear_diagonal_shift();
        assert!(op.diagonal_shift().is_none());
        assert_eq!(op.apply_new(&x), plain);
    }

    #[test]
    fn f32_and_f64_agree_on_small_problems() {
        let w = small_workload();
        let op64 = MatrixFreeOperator::<f64>::from_workload(&w);
        let op32 = MatrixFreeOperator::<f32>::from_workload(&w);
        let dims = w.dims();
        let x64 = CellField::from_fn(dims, |c| (c.x as f64 - c.y as f64) * 0.25);
        let x32: CellField<f32> = x64.convert();
        let y64 = op64.apply_new(&x64);
        let y32 = op32.apply_new(&x32);
        let diff = y64.max_abs_diff(&y32.convert());
        assert!(diff < 1e-5, "precision gap too large: {diff}");
    }
}
