//! The TPFA interfacial flux of Eq. (4).
//!
//! `f_KL = Υ_KL λ_KL (p_L − p_K)` — the transmissibility and mobility are
//! pre-multiplied into a single coefficient by `mffv_mesh::Transmissibilities`, so
//! the flux kernel itself is a single multiply of a pressure difference.

use mffv_mesh::Scalar;

/// Floating-point operations performed per neighbour contribution in the paper's
/// per-cell accounting (Table V counts 14 FLOPs per neighbour when the
/// transmissibility–mobility product is computed inline; our pre-multiplied
/// coefficient form performs 1 FSUB + 1 FMA = 3 FLOPs per neighbour, and the
/// performance model in `mffv-perf` reproduces the paper's 14-FLOP accounting).
pub const FLOPS_PER_NEIGHBOR: usize = 3;

/// The interfacial flux `f_KL = coeff · (p_L − p_K)` of Eq. (4), where `coeff` is the
/// pre-multiplied `Υ_KL λ_KL`.
#[inline]
pub fn interfacial_flux<T: Scalar>(coeff: T, p_k: T, p_l: T) -> T {
    coeff * (p_l - p_k)
}

/// The contribution of one neighbour to `(Jx)_K` in the literal Eq. (6) form:
/// `coeff · (x_L − x_K)`.
#[inline]
pub fn jx_contribution_paper<T: Scalar>(coeff: T, x_k: T, x_l: T) -> T {
    coeff * (x_l - x_k)
}

/// The contribution of one neighbour to `(A x)_K` in the SPD form used by CG:
/// `coeff · (x_K − x_L)`, with `x_L` taken as zero when the neighbour is a Dirichlet
/// cell (Dirichlet elimination).
#[inline]
pub fn ax_contribution_spd<T: Scalar>(coeff: T, x_k: T, x_l: T, neighbor_is_dirichlet: bool) -> T {
    let x_l_eff = if neighbor_is_dirichlet { T::ZERO } else { x_l };
    coeff * (x_k - x_l_eff)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flux_is_proportional_to_pressure_difference() {
        assert_eq!(interfacial_flux(2.0f64, 1.0, 4.0), 6.0);
        assert_eq!(interfacial_flux(2.0f64, 4.0, 1.0), -6.0);
        assert_eq!(interfacial_flux(0.0f64, 4.0, 1.0), 0.0);
    }

    #[test]
    fn flux_is_antisymmetric() {
        // f_KL = -f_LK for a symmetric coefficient — mass leaving K enters L.
        let coeff = 3.5f32;
        let (pk, pl) = (2.0f32, 7.0f32);
        assert_eq!(
            interfacial_flux(coeff, pk, pl),
            -interfacial_flux(coeff, pl, pk)
        );
    }

    #[test]
    fn paper_and_spd_forms_are_opposite_for_interior_neighbors() {
        let coeff = 1.5f64;
        let (xk, xl) = (2.0, 5.0);
        assert_eq!(
            jx_contribution_paper(coeff, xk, xl),
            -ax_contribution_spd(coeff, xk, xl, false)
        );
    }

    #[test]
    fn spd_form_drops_dirichlet_neighbors() {
        assert_eq!(ax_contribution_spd(2.0f64, 3.0, 100.0, true), 6.0);
        assert_eq!(ax_contribution_spd(2.0f64, 3.0, 100.0, false), -194.0);
    }

    #[test]
    fn flop_count_constant() {
        assert_eq!(FLOPS_PER_NEIGHBOR, 3);
    }
}
