#![forbid(unsafe_code)]
//! # mffv-fv
//!
//! Finite-volume physics for the single-phase incompressible Darcy problem of the
//! paper: the TPFA interfacial flux (Eq. 4), the discrete residual (Eq. 3), the
//! **matrix-free** application of the Jacobian (Eq. 6 / Algorithm 2), and — as the
//! baseline the matrix-free approach is motivated against — an explicitly assembled
//! CSR Jacobian with a standard sparse matrix-vector product.
//!
//! The crate is host-side: it defines the *mathematics* that both the dataflow
//! implementation (`mffv-core`) and the GPU-style reference (`mffv-gpu-ref`) must
//! reproduce, and is the oracle used by their tests.  The hot apply path runs
//! through a precomputed [`plan::StencilPlan`] — branch-free interior x-line
//! runs, fused CG kernels, and an optional scoped-thread parallel apply whose
//! results are bitwise identical for every thread count.
//!
//! ## Sign convention
//!
//! Eq. (6) of the paper defines `(Jx)_K = Σ Υλ (x_L − x_K)` for interior cells.  CG
//! requires a symmetric positive definite operator, so the operator actually handed
//! to the solver is the standard Dirichlet-eliminated, positive form
//! `(A x)_K = Σ Υλ (x_K − x_L·[L ∉ T_D])` (see `DESIGN.md` §4).  Both forms are
//! provided; [`matrix_free::MatrixFreeOperator::apply_paper_jx`] is the literal
//! Eq. (6) and is related to the SPD form by a sign flip plus the treatment of
//! Dirichlet couplings.

pub mod csr;
pub mod flux;
pub mod matrix_free;
pub mod mg;
pub mod operator;
pub mod plan;
pub mod residual;
pub mod velocity;

pub use csr::{AssembledOperator, CsrMatrix};
pub use matrix_free::MatrixFreeOperator;
pub use mg::{MgConfig, MultigridVcycle};
pub use operator::{LinearOperator, Preconditioner};
pub use plan::{
    det_dot, det_norm_squared, PlanStats, StencilPlan, APPLY_STREAMS_PER_CELL, SLAB_CELLS,
};
pub use residual::{newton_rhs, newton_rhs_into, residual, residual_into};
pub use velocity::FluxField;
// The small-scale deterministic folds live in `mffv-mesh` (the bottom of the
// crate stack, so mesh itself can use them without a cycle); re-exported here
// beside `det_dot`/`det_norm_squared` so solver-side code finds the whole
// blessed-reduction family in one place.
pub use mffv_mesh::reduce::{seq_mean, seq_sum};

/// Convenient glob import.
pub mod prelude {
    pub use crate::csr::{AssembledOperator, CsrMatrix};
    pub use crate::flux::{interfacial_flux, FLOPS_PER_NEIGHBOR};
    pub use crate::matrix_free::MatrixFreeOperator;
    pub use crate::mg::{MgConfig, MultigridVcycle};
    pub use crate::operator::{LinearOperator, Preconditioner};
    pub use crate::plan::{
        det_dot, det_norm_squared, PlanStats, StencilPlan, APPLY_STREAMS_PER_CELL, SLAB_CELLS,
    };
    pub use crate::residual::{newton_rhs, newton_rhs_into, residual, residual_into};
    pub use crate::velocity::{cell_velocity, FluxField};
}
