//! Planned stencil execution: branch-free, fused, multithreaded matrix-free apply.
//!
//! The paper's premise (§II-A) is that fusing local assembly with the
//! matrix-vector product makes the solve *bandwidth*-bound — which only holds if
//! the inner loop actually streams memory instead of chasing per-neighbour
//! `Option` lookups and Dirichlet branches.  A [`StencilPlan`] is a precomputed
//! partition of the grid into
//!
//! * **interior x-line runs** — maximal contiguous stretches of cells whose six
//!   neighbours all exist at fixed linear offsets (`±1`, `±nx`, `±nx·ny`) and
//!   whose closed stencil contains no Dirichlet cell.  These are applied by a
//!   tight, branch-free, autovectorizable loop over raw slices; and
//! * a **general remainder** — boundary cells, Dirichlet cells and cells
//!   adjacent to Dirichlet cells, handled by the same per-neighbour logic as the
//!   naive kernel.
//!
//! Every cell's output value is computed with *exactly* the arithmetic (same
//! operations, same order) as the naive `apply_spd` loop, so planned and naive
//! applies are bitwise identical.
//!
//! # Deterministic slabs
//!
//! The plan also fixes a partition of the linear cell range into **slabs** of
//! [`SLAB_CELLS`] cells.  Slabs are the unit of both
//!
//! * **reduction determinism** — every dot product in the planned/fused path is
//!   accumulated as a left-to-right FMA chain *within* each slab, and the
//!   per-slab partials are combined in slab order.  [`det_dot`] /
//!   [`det_norm_squared`] implement the identical order for unfused callers, so
//!   fused and unfused CG produce bitwise-identical residual histories; and
//! * **thread scheduling** — the threaded kernels assign whole slabs to scoped
//!   threads ([`std::thread::scope`], std-only).  Thread count only changes
//!   *which* thread computes a slab, never the arithmetic, so results are
//!   bitwise identical for any thread count — the same determinism contract
//!   `mffv-engine` guarantees across worker counts.
//!
//! Grids of at most [`SLAB_CELLS`] cells have a single slab, in which case the
//! deterministic reductions degenerate to the plain left-to-right FMA chain of
//! [`CellField::dot`].

use crate::flux::ax_contribution_spd;
use mffv_mesh::{CellField, Dims, Direction, Scalar};
use std::ops::Range;

/// Cells per deterministic reduction/scheduling slab.
///
/// Fixed (never derived from the thread count) so that reductions associate
/// identically for any number of apply threads.  4096 cells keep a slab's
/// working set (solution, residual, direction, `A d`, coefficients) inside
/// a typical L2 cache, which is what makes slab-level fusion profitable.
pub const SLAB_CELLS: usize = 4096;

/// Memory streams the planned apply touches per cell: the six-coefficient row
/// plus the input read and the output write.  Multiplied by `size_of::<T>()`
/// this is the charged bytes/cell of the effective-bandwidth model shared by
/// the `spmv_bench` report bin and the `roofline_report` example (stencil
/// reuse of `x` and the Dirichlet mask are deliberately not charged).
pub const APPLY_STREAMS_PER_CELL: usize = 8;

/// One maximal branch-free stretch of an interior x-line (clipped to a slab).
#[derive(Clone, Copy, Debug)]
struct Run {
    /// Linear index of the first cell.
    start: usize,
    /// Number of cells.
    len: usize,
}

/// One deterministic slab: a contiguous linear cell range with its branch-free
/// runs and its general-path remainder cells.
#[derive(Clone, Debug)]
struct Slab {
    /// The linear cell range `[start, end)` this slab owns.
    range: Range<usize>,
    /// Branch-free interior runs, in increasing cell order.
    runs: Vec<Run>,
    /// Remainder cells (boundary / Dirichlet / Dirichlet-adjacent), in
    /// increasing cell order.
    general: Vec<usize>,
}

/// Summary counters of a [`StencilPlan`], for reports and benchmarks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Total cells in the grid.
    pub num_cells: usize,
    /// Cells covered by branch-free interior runs.
    pub run_cells: usize,
    /// Cells on the general path (boundary, Dirichlet, Dirichlet-adjacent).
    pub general_cells: usize,
    /// Dirichlet cells (a subset of `general_cells`).
    pub dirichlet_cells: usize,
    /// Number of branch-free runs.
    pub num_runs: usize,
    /// Number of deterministic slabs.
    pub num_slabs: usize,
}

impl PlanStats {
    /// Fraction of cells on the branch-free fast path.
    pub fn run_fraction(&self) -> f64 {
        if self.num_cells == 0 {
            0.0
        } else {
            self.run_cells as f64 / self.num_cells as f64
        }
    }
}

/// A precomputed stencil execution plan for one `(dims, Dirichlet set)` pair.
///
/// Built once per operator (cost: one linear sweep over the mask) and reused
/// by every apply; see the module docs for the run/slab structure.
#[derive(Clone, Debug)]
pub struct StencilPlan {
    dims: Dims,
    slabs: Vec<Slab>,
    stats: PlanStats,
}

impl StencilPlan {
    /// Build the plan for a grid and its Dirichlet mask (`mask[k]` true when
    /// cell `k` is a Dirichlet cell).
    pub fn new(dims: Dims, dirichlet_mask: &[bool]) -> Self {
        assert_eq!(
            dirichlet_mask.len(),
            dims.num_cells(),
            "Dirichlet mask length mismatch"
        );
        let n = dims.num_cells();
        let num_slabs = n.div_ceil(SLAB_CELLS);
        let mut slabs: Vec<Slab> = (0..num_slabs)
            .map(|i| Slab {
                range: i * SLAB_CELLS..((i + 1) * SLAB_CELLS).min(n),
                runs: Vec::new(),
                general: Vec::new(),
            })
            .collect();
        let mut stats = PlanStats {
            num_cells: n,
            num_slabs,
            dirichlet_cells: dirichlet_mask.iter().filter(|&&d| d).count(),
            ..PlanStats::default()
        };

        let sy = dims.y_stride();
        let sz = dims.z_stride();
        for (y, z, line) in dims.iter_x_lines() {
            // A run cell needs all six neighbours present (so the line must be
            // interior in y and z, and the cell interior in x) and a stencil
            // free of Dirichlet cells.
            let line_is_interior = dims.nx >= 3
                && dims.ny >= 3
                && dims.nz >= 3
                && (1..dims.ny - 1).contains(&y)
                && (1..dims.nz - 1).contains(&z);
            let base = line.start;
            let mut run_start: Option<usize> = None;
            for x in 0..dims.nx {
                let k = base + x;
                let eligible = line_is_interior
                    && x >= 1
                    && x < dims.nx - 1
                    && !dirichlet_mask[k]
                    && !dirichlet_mask[k - 1]
                    && !dirichlet_mask[k + 1]
                    && !dirichlet_mask[k - sy]
                    && !dirichlet_mask[k + sy]
                    && !dirichlet_mask[k - sz]
                    && !dirichlet_mask[k + sz];
                if eligible {
                    run_start.get_or_insert(k);
                } else {
                    if let Some(start) = run_start.take() {
                        push_run(&mut slabs, &mut stats, start, k);
                    }
                    slabs[k / SLAB_CELLS].general.push(k);
                    stats.general_cells += 1;
                }
            }
            if let Some(start) = run_start.take() {
                push_run(&mut slabs, &mut stats, start, line.end);
            }
        }
        Self { dims, slabs, stats }
    }

    /// Grid extents the plan was built for.
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// The plan's summary counters.
    pub fn stats(&self) -> PlanStats {
        self.stats
    }

    /// `y = (A + diag(d)) x` through the plan, on `threads` scoped threads.
    ///
    /// `diag` is the optional **diagonal shift** of the transient
    /// (accumulation-augmented) operator: when present, every non-Dirichlet
    /// cell `K` gains `diag[K] · x_K` *after* its six stencil terms — the
    /// exact operation order of the naive shifted loop, so planned and naive
    /// shifted applies stay bitwise identical.  Dirichlet rows remain the
    /// identity regardless of their `diag` entry.  `None` is the steady
    /// operator, bitwise unchanged from earlier releases.
    pub fn apply<T: Scalar>(
        &self,
        coeffs: &[[T; 6]],
        mask: &[bool],
        diag: Option<&[T]>,
        x: &CellField<T>,
        y: &mut CellField<T>,
        threads: usize,
    ) {
        self.check_fields(coeffs, mask, diag, x.dims(), y.dims());
        let ctx = KernelCtx {
            dims: self.dims,
            coeffs,
            mask,
            diag,
        };
        let xs = x.as_slice();
        if self.group_count(threads) == 1 {
            for slab in &self.slabs {
                apply_slab(slab, &ctx, xs, y.as_mut_slice(), 0);
            }
            return;
        }
        let groups = self.thread_groups(threads);
        std::thread::scope(|scope| {
            let mut rest = y.as_mut_slice();
            let mut consumed = 0usize;
            for group in &groups {
                let group_end = self.slabs[group.end - 1].range.end;
                let (part, tail) = rest.split_at_mut(group_end - consumed);
                rest = tail;
                let offset = consumed;
                consumed = group_end;
                let slabs = &self.slabs[group.clone()];
                scope.spawn(move || {
                    for slab in slabs {
                        apply_slab(slab, &ctx, xs, part, offset);
                    }
                });
            }
        });
    }

    /// Fused `ad = (A + diag) d` and `dᵀ(A d)` in a single pass: each slab is
    /// applied and immediately reduced while its output is cache-hot.
    /// `diag` is the optional diagonal shift (see [`apply`](Self::apply)).
    ///
    /// The returned value is bitwise identical to `apply` followed by
    /// [`det_dot`]`(d, ad)`, for every thread count.
    pub fn apply_dot<T: Scalar>(
        &self,
        coeffs: &[[T; 6]],
        mask: &[bool],
        diag: Option<&[T]>,
        d: &CellField<T>,
        ad: &mut CellField<T>,
        threads: usize,
    ) -> T {
        self.check_fields(coeffs, mask, diag, d.dims(), ad.dims());
        let ctx = KernelCtx {
            dims: self.dims,
            coeffs,
            mask,
            diag,
        };
        let ds = d.as_slice();
        if self.group_count(threads) == 1 {
            // Serial path: fold the per-slab partials inline in slab order —
            // bitwise identical to `combine_partials` over a materialised
            // buffer, with no per-call allocation (the steady-state serving
            // path runs this once per CG iteration).
            let out = ad.as_mut_slice();
            let mut acc: Option<T> = None;
            for slab in &self.slabs {
                apply_slab(slab, &ctx, ds, out, 0);
                let p = slab_dot(&ds[slab.range.clone()], &out[slab.range.clone()]);
                acc = Some(match acc {
                    None => p,
                    Some(acc) => acc + p,
                });
            }
            return acc.unwrap_or(T::ZERO);
        }
        let groups = self.thread_groups(threads);
        let mut partials = vec![T::ZERO; self.slabs.len()];
        std::thread::scope(|scope| {
            let mut rest = ad.as_mut_slice();
            let mut partial_rest = partials.as_mut_slice();
            let mut consumed = 0usize;
            for group in &groups {
                let group_end = self.slabs[group.end - 1].range.end;
                let (part, tail) = rest.split_at_mut(group_end - consumed);
                rest = tail;
                let (parts, ptail) = partial_rest.split_at_mut(group.len());
                partial_rest = ptail;
                let offset = consumed;
                consumed = group_end;
                let slabs = &self.slabs[group.clone()];
                scope.spawn(move || {
                    for (slab, partial) in slabs.iter().zip(parts.iter_mut()) {
                        apply_slab(slab, &ctx, ds, part, offset);
                        let local = slab.range.start - offset..slab.range.end - offset;
                        *partial = slab_dot(&ds[slab.range.clone()], &part[local]);
                    }
                });
            }
        });
        combine_partials(&partials)
    }

    /// Fused CG update: `x += α d`, `r −= α (A d)` and the new `rᵀr`, in a
    /// single pass over the slabs.
    ///
    /// Bitwise identical — for every thread count — to the unfused sequence
    /// `x.axpy(α, d); r.axpy(−α, ad);` followed by [`det_norm_squared`]`(r)`.
    pub fn cg_update<T: Scalar>(
        &self,
        alpha: T,
        d: &CellField<T>,
        ad: &CellField<T>,
        x: &mut CellField<T>,
        r: &mut CellField<T>,
        threads: usize,
    ) -> T {
        assert_eq!(d.dims(), self.dims, "direction dimension mismatch");
        assert_eq!(ad.dims(), self.dims, "operator output dimension mismatch");
        assert_eq!(x.dims(), self.dims, "solution dimension mismatch");
        assert_eq!(r.dims(), self.dims, "residual dimension mismatch");
        let ds = d.as_slice();
        let ads = ad.as_slice();
        if self.group_count(threads) == 1 {
            // Serial path: inline partial fold, no per-call allocation (see
            // `apply_dot` — same bitwise-equivalence argument).
            let xs = x.as_mut_slice();
            let rs = r.as_mut_slice();
            let mut acc: Option<T> = None;
            for slab in &self.slabs {
                let range = slab.range.clone();
                let p = update_slab(
                    alpha,
                    &ds[range.clone()],
                    &ads[range.clone()],
                    &mut xs[range.clone()],
                    &mut rs[range],
                );
                acc = Some(match acc {
                    None => p,
                    Some(acc) => acc + p,
                });
            }
            return acc.unwrap_or(T::ZERO);
        }
        let groups = self.thread_groups(threads);
        let mut partials = vec![T::ZERO; self.slabs.len()];
        {
            std::thread::scope(|scope| {
                let mut x_rest = x.as_mut_slice();
                let mut r_rest = r.as_mut_slice();
                let mut partial_rest = partials.as_mut_slice();
                let mut consumed = 0usize;
                for group in &groups {
                    let group_end = self.slabs[group.end - 1].range.end;
                    let (x_part, x_tail) = x_rest.split_at_mut(group_end - consumed);
                    x_rest = x_tail;
                    let (r_part, r_tail) = r_rest.split_at_mut(group_end - consumed);
                    r_rest = r_tail;
                    let (parts, ptail) = partial_rest.split_at_mut(group.len());
                    partial_rest = ptail;
                    let offset = consumed;
                    consumed = group_end;
                    let slabs = &self.slabs[group.clone()];
                    scope.spawn(move || {
                        for (slab, partial) in slabs.iter().zip(parts.iter_mut()) {
                            let local = slab.range.start - offset..slab.range.end - offset;
                            *partial = update_slab(
                                alpha,
                                &ds[slab.range.clone()],
                                &ads[slab.range.clone()],
                                &mut x_part[local.clone()],
                                &mut r_part[local],
                            );
                        }
                    });
                }
            });
        }
        combine_partials(&partials)
    }

    /// Contiguous slab-index groups for `threads` scoped threads: a balanced
    /// partition (the first `slabs % threads` groups take one extra slab), so
    /// every requested thread gets work whenever there are enough slabs.  At
    /// most one group per slab; a single group short-circuits the spawn
    /// entirely.  Grouping never affects results — reductions are combined in
    /// slab order, not group order.
    /// Number of groups [`thread_groups`](Self::thread_groups) would build,
    /// without materialising them.  The kernels test this for 1 to take the
    /// serial path with no per-call allocation — the steady-state serving
    /// hot loop depends on that.
    fn group_count(&self, threads: usize) -> usize {
        threads.clamp(1, self.slabs.len().max(1))
    }

    fn thread_groups(&self, threads: usize) -> Vec<Range<usize>> {
        let slabs = self.slabs.len();
        let threads = threads.clamp(1, slabs.max(1));
        let base = slabs / threads;
        let extra = slabs % threads;
        let mut groups = Vec::with_capacity(threads);
        let mut start = 0;
        for t in 0..threads {
            let len = base + usize::from(t < extra);
            groups.push(start..start + len);
            start += len;
        }
        groups
    }

    fn check_fields<T: Scalar>(
        &self,
        coeffs: &[[T; 6]],
        mask: &[bool],
        diag: Option<&[T]>,
        xd: Dims,
        yd: Dims,
    ) {
        assert_eq!(
            coeffs.len(),
            self.dims.num_cells(),
            "coefficient table mismatch"
        );
        assert_eq!(mask.len(), self.dims.num_cells(), "Dirichlet mask mismatch");
        if let Some(diag) = diag {
            assert_eq!(
                diag.len(),
                self.dims.num_cells(),
                "diagonal shift length mismatch"
            );
        }
        assert_eq!(xd, self.dims, "input field dimension mismatch");
        assert_eq!(yd, self.dims, "output field dimension mismatch");
    }
}

fn push_run(slabs: &mut [Slab], stats: &mut PlanStats, start: usize, end: usize) {
    // Clip the run at slab boundaries so each slab owns its cells exclusively.
    let mut s = start;
    while s < end {
        let slab_idx = s / SLAB_CELLS;
        let e = end.min((slab_idx + 1) * SLAB_CELLS);
        slabs[slab_idx].runs.push(Run {
            start: s,
            len: e - s,
        });
        stats.num_runs += 1;
        stats.run_cells += e - s;
        s = e;
    }
}

/// Shared read-only inputs of the apply kernels (Copy, so each scoped thread
/// captures its own copy).
#[derive(Clone, Copy)]
struct KernelCtx<'a, T: Scalar> {
    dims: Dims,
    coeffs: &'a [[T; 6]],
    mask: &'a [bool],
    /// Optional diagonal shift (the transient accumulation term); ignored on
    /// Dirichlet rows.
    diag: Option<&'a [T]>,
}

/// Apply one slab into `y_part`, the output sub-slice starting at global cell
/// index `offset`.
fn apply_slab<T: Scalar>(
    slab: &Slab,
    ctx: &KernelCtx<'_, T>,
    x: &[T],
    y_part: &mut [T],
    offset: usize,
) {
    for run in &slab.runs {
        apply_run(*run, ctx, x, y_part, offset);
    }
    for &k in &slab.general {
        y_part[k - offset] = general_cell(k, ctx, x);
    }
}

/// The branch-free inner loop: equal-length pre-sliced windows let the bounds
/// checks vanish and the six FMA-free multiply/sub/add chains autovectorize.
#[inline]
fn apply_run<T: Scalar>(
    run: Run,
    ctx: &KernelCtx<'_, T>,
    x: &[T],
    y_part: &mut [T],
    offset: usize,
) {
    let (coeffs, diag) = (ctx.coeffs, ctx.diag);
    let sy = ctx.dims.y_stride();
    let sz = ctx.dims.z_stride();
    let Run { start, len } = run;
    let out = &mut y_part[start - offset..start - offset + len];
    let cs = &coeffs[start..start + len];
    let xc = &x[start..start + len];
    let xe = &x[start + 1..start + 1 + len];
    let xw = &x[start - 1..start - 1 + len];
    let xs = &x[start + sy..start + sy + len];
    let xn = &x[start - sy..start - sy + len];
    let xu = &x[start + sz..start + sz + len];
    let xd = &x[start - sz..start - sz + len];
    match diag {
        None => {
            for (i, o) in out.iter_mut().enumerate() {
                let c = &cs[i];
                let xk = xc[i];
                // Same operations in the same Direction::ALL order as the
                // naive kernel: acc += coeff · (x_K − x_L), six times.
                let mut acc = T::ZERO;
                acc += c[0] * (xk - xe[i]);
                acc += c[1] * (xk - xw[i]);
                acc += c[2] * (xk - xs[i]);
                acc += c[3] * (xk - xn[i]);
                acc += c[4] * (xk - xu[i]);
                acc += c[5] * (xk - xd[i]);
                *o = acc;
            }
        }
        Some(dg) => {
            // The shifted kernel stays branch-free: the diagonal is a dense
            // pre-sliced stream, one extra multiply/add per cell appended in
            // the same order the naive shifted loop uses.
            let dgs = &dg[start..start + len];
            for (i, o) in out.iter_mut().enumerate() {
                let c = &cs[i];
                let xk = xc[i];
                let mut acc = T::ZERO;
                acc += c[0] * (xk - xe[i]);
                acc += c[1] * (xk - xw[i]);
                acc += c[2] * (xk - xs[i]);
                acc += c[3] * (xk - xn[i]);
                acc += c[4] * (xk - xu[i]);
                acc += c[5] * (xk - xd[i]);
                acc += dgs[i] * xk;
                *o = acc;
            }
        }
    }
}

/// The general path: identical per-neighbour logic to the naive kernel
/// (Dirichlet rows are the identity, Dirichlet couplings are dropped).
#[inline]
fn general_cell<T: Scalar>(k: usize, ctx: &KernelCtx<'_, T>, x: &[T]) -> T {
    if ctx.mask[k] {
        return x[k];
    }
    let c = ctx.dims.unlinear(k);
    let xk = x[k];
    let row = &ctx.coeffs[k];
    let mut acc = T::ZERO;
    for dir in Direction::ALL {
        if let Some(nb) = ctx.dims.neighbor(c, dir) {
            let l = ctx.dims.linear(nb);
            acc += ax_contribution_spd(row[dir.index()], xk, x[l], ctx.mask[l]);
        }
    }
    if let Some(dg) = ctx.diag {
        acc += dg[k] * xk;
    }
    acc
}

/// Left-to-right FMA chain over one slab — the unit of deterministic
/// reduction.
#[inline]
fn slab_dot<T: Scalar>(a: &[T], b: &[T]) -> T {
    let mut acc = T::ZERO;
    for (va, vb) in a.iter().zip(b.iter()) {
        acc = va.mul_add(*vb, acc);
    }
    acc
}

/// Fused per-slab CG update returning the slab's `rᵀr` partial.
#[inline]
fn update_slab<T: Scalar>(alpha: T, d: &[T], ad: &[T], x: &mut [T], r: &mut [T]) -> T {
    let neg_alpha = -alpha;
    let mut acc = T::ZERO;
    for i in 0..d.len() {
        x[i] = alpha.mul_add(d[i], x[i]);
        let rv = neg_alpha.mul_add(ad[i], r[i]);
        r[i] = rv;
        acc = rv.mul_add(rv, acc);
    }
    acc
}

/// Combine per-slab partials in slab order.  The first partial seeds the
/// accumulator (no spurious leading `0 +`), so a single-slab reduction is
/// exactly the plain FMA chain.
#[inline]
fn combine_partials<T: Scalar>(partials: &[T]) -> T {
    let mut iter = partials.iter();
    let Some(&first) = iter.next() else {
        return T::ZERO;
    };
    iter.fold(first, |acc, &p| acc + p)
}

/// Deterministic slab-ordered dot product: a left-to-right FMA chain within
/// each [`SLAB_CELLS`] chunk, partials combined in chunk order.
///
/// This is the canonical reduction of every host CG/PCG dot product; the
/// fused kernels of [`StencilPlan`] reproduce it bit-for-bit, which is what
/// makes fused and unfused solves (and any apply thread count) bitwise
/// identical.  For fields of at most [`SLAB_CELLS`] cells it equals
/// [`CellField::dot`] exactly.
pub fn det_dot<T: Scalar>(a: &CellField<T>, b: &CellField<T>) -> T {
    assert_eq!(a.dims(), b.dims(), "field dimension mismatch");
    let mut partial_acc: Option<T> = None;
    for (ca, cb) in a
        .as_slice()
        .chunks(SLAB_CELLS)
        .zip(b.as_slice().chunks(SLAB_CELLS))
    {
        let p = slab_dot(ca, cb);
        partial_acc = Some(match partial_acc {
            None => p,
            Some(acc) => acc + p,
        });
    }
    partial_acc.unwrap_or(T::ZERO)
}

/// Deterministic slab-ordered squared norm (see [`det_dot`]).
pub fn det_norm_squared<T: Scalar>(a: &CellField<T>) -> T {
    det_dot(a, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mffv_mesh::{DirichletSet, Transmissibilities};

    fn pseudorandom_field(dims: Dims, seed: u64) -> CellField<f64> {
        let mut state = 0x0123_4567_89AB_CDEFu64 ^ seed;
        CellField::from_fn(dims, |_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn empty_dirichlet_plan_covers_all_interior_cells() {
        let dims = Dims::new(7, 5, 4);
        let plan = StencilPlan::new(dims, &vec![false; dims.num_cells()]);
        let stats = plan.stats();
        assert_eq!(stats.run_cells, dims.num_interior_cells());
        assert_eq!(stats.run_cells + stats.general_cells, dims.num_cells());
        assert_eq!(stats.dirichlet_cells, 0);
        assert!(stats.run_fraction() > 0.0);
    }

    #[test]
    fn thin_grids_have_no_runs_but_full_coverage() {
        for dims in [Dims::new(1, 6, 6), Dims::new(6, 1, 6), Dims::new(2, 2, 2)] {
            let plan = StencilPlan::new(dims, &vec![false; dims.num_cells()]);
            assert_eq!(plan.stats().run_cells, 0, "{dims}");
            assert_eq!(plan.stats().general_cells, dims.num_cells(), "{dims}");
        }
    }

    #[test]
    fn dirichlet_cells_break_runs() {
        let dims = Dims::new(9, 5, 5);
        let mut mask = vec![false; dims.num_cells()];
        // A Dirichlet cell in the middle of an interior line removes itself and
        // its six stencil neighbours from the fast path.
        let center = dims.linear(mffv_mesh::CellIndex::new(4, 2, 2));
        mask[center] = true;
        let plan = StencilPlan::new(dims, &mask);
        let empty = StencilPlan::new(dims, &vec![false; dims.num_cells()]);
        assert_eq!(plan.stats().dirichlet_cells, 1);
        assert_eq!(
            empty.stats().run_cells - plan.stats().run_cells,
            7,
            "the Dirichlet cell and its 6 neighbours must leave the fast path"
        );
    }

    #[test]
    fn slab_partition_is_independent_of_threads() {
        let dims = Dims::new(40, 30, 20);
        let plan = StencilPlan::new(dims, &vec![false; dims.num_cells()]);
        assert_eq!(
            plan.stats().num_slabs,
            dims.num_cells().div_ceil(SLAB_CELLS)
        );
        for threads in [1, 2, 3, 8, 1000] {
            let groups = plan.thread_groups(threads);
            // Balanced: every requested thread gets a non-empty group (capped
            // at one group per slab), groups tile the slab range contiguously.
            assert_eq!(groups.len(), threads.min(plan.slabs.len()));
            assert!(groups.iter().all(|g| !g.is_empty()));
            assert_eq!(groups.first().unwrap().start, 0);
            assert_eq!(groups.last().unwrap().end, plan.slabs.len());
            for pair in groups.windows(2) {
                assert_eq!(pair[0].end, pair[1].start);
            }
        }
    }

    #[test]
    fn det_dot_equals_field_dot_within_one_slab() {
        let dims = Dims::new(16, 16, 8); // 2048 cells: a single slab
        let a = pseudorandom_field(dims, 1);
        let b = pseudorandom_field(dims, 2);
        assert_eq!(det_dot(&a, &b).to_bits(), a.dot(&b).to_bits());
        assert_eq!(det_norm_squared(&a).to_bits(), a.norm_squared().to_bits());
    }

    #[test]
    fn det_dot_is_close_to_field_dot_across_slabs() {
        let dims = Dims::new(32, 32, 8); // 8192 cells: two slabs
        let a = pseudorandom_field(dims, 3);
        let b = pseudorandom_field(dims, 4);
        let d1 = det_dot(&a, &b);
        let d2 = a.dot(&b);
        assert!((d1 - d2).abs() <= 1e-10 * d2.abs().max(1.0));
    }

    #[test]
    fn fused_kernels_match_their_unfused_counterparts_bitwise() {
        let dims = Dims::new(33, 17, 9); // odd extents, > 1 slab
        let coeffs = Transmissibilities::<f64>::uniform(dims, 1.5);
        let dirichlet = DirichletSet::x_faces(dims, 1.0, 0.0);
        let mask: Vec<bool> = (0..dims.num_cells())
            .map(|k| dirichlet.contains_linear(k))
            .collect();
        let plan = StencilPlan::new(dims, &mask);
        let d = pseudorandom_field(dims, 7);

        for threads in [1, 2, 8] {
            // apply + det_dot == apply_dot
            let mut ad_ref = CellField::zeros(dims);
            plan.apply(coeffs.cell_rows(), &mask, None, &d, &mut ad_ref, 1);
            let unfused = det_dot(&d, &ad_ref);
            let mut ad = CellField::zeros(dims);
            let fused = plan.apply_dot(coeffs.cell_rows(), &mask, None, &d, &mut ad, threads);
            assert_eq!(fused.to_bits(), unfused.to_bits(), "threads = {threads}");
            assert_eq!(ad, ad_ref);

            // axpy/axpy/det_norm == cg_update
            let alpha = 0.37f64;
            let mut x_ref = pseudorandom_field(dims, 8);
            let mut r_ref = pseudorandom_field(dims, 9);
            let mut x = x_ref.clone();
            let mut r = r_ref.clone();
            x_ref.axpy(alpha, &d);
            r_ref.axpy(-alpha, &ad_ref);
            let rr_ref = det_norm_squared(&r_ref);
            let rr = plan.cg_update(alpha, &d, &ad_ref, &mut x, &mut r, threads);
            assert_eq!(rr.to_bits(), rr_ref.to_bits(), "threads = {threads}");
            assert_eq!(x, x_ref);
            assert_eq!(r, r_ref);
        }
    }

    #[test]
    fn diagonal_shift_adds_dx_on_non_dirichlet_rows_only() {
        let dims = Dims::new(9, 7, 5);
        let coeffs = Transmissibilities::<f64>::uniform(dims, 1.25);
        let dirichlet = DirichletSet::x_faces(dims, 1.0, 0.0);
        let mask: Vec<bool> = (0..dims.num_cells())
            .map(|k| dirichlet.contains_linear(k))
            .collect();
        let plan = StencilPlan::new(dims, &mask);
        let x = pseudorandom_field(dims, 11);
        let diag: Vec<f64> = (0..dims.num_cells())
            .map(|k| 0.5 + (k % 7) as f64)
            .collect();

        let mut plain = CellField::zeros(dims);
        plan.apply(coeffs.cell_rows(), &mask, None, &x, &mut plain, 1);
        for threads in [1, 2, 8] {
            let mut shifted = CellField::zeros(dims);
            plan.apply(
                coeffs.cell_rows(),
                &mask,
                Some(&diag),
                &x,
                &mut shifted,
                threads,
            );
            for k in 0..dims.num_cells() {
                let expect = if mask[k] {
                    plain.get(k)
                } else {
                    plain.get(k) + diag[k] * x.get(k)
                };
                assert_eq!(shifted.get(k).to_bits(), expect.to_bits(), "cell {k}");
            }

            // The fused shifted apply_dot matches apply + det_dot bitwise.
            let mut ad = CellField::zeros(dims);
            let fused =
                plan.apply_dot(coeffs.cell_rows(), &mask, Some(&diag), &x, &mut ad, threads);
            let mut ad_ref = CellField::zeros(dims);
            plan.apply(coeffs.cell_rows(), &mask, Some(&diag), &x, &mut ad_ref, 1);
            assert_eq!(fused.to_bits(), det_dot(&x, &ad_ref).to_bits());
            assert_eq!(ad, ad_ref);
        }
    }
}
