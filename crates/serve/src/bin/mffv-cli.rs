//! The daemon's command-line client.
//!
//! ```text
//! mffv-cli --addr HOST:PORT submit SPEC.mffv [--preconditioner jacobi|mg|none]
//!          [--cancel-after-iters N] [--quiet]
//! mffv-cli --addr HOST:PORT ping
//! mffv-cli --addr HOST:PORT shutdown [--abort]
//! ```
//!
//! `submit` parses a `.mffv` spec file (see `mffv_serve::specfile`), sends
//! it, and renders the streamed convergence live — one line every few
//! iterations plus the terminal verdict.  `--cancel-after-iters N` sends a
//! mid-flight `Cancel` after the Nth streamed iteration (the deterministic
//! stand-in for Ctrl-C: pure-std binaries cannot trap signals, and the
//! daemon cancels orphans on disconnect anyway, so an actual Ctrl-C also
//! stops the solve).

use mffv_serve::{parse_spec, Client, ClientControl, JobEnd, WireShutdownMode};
use mffv_solver::backend::PreconditionerKind;
use mffv_solver::monitor::SolveEvent;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: mffv-cli --addr HOST:PORT submit SPEC.mffv [--preconditioner jacobi|mg|none] \
     [--cancel-after-iters N] [--quiet]\n\
     \x20      mffv-cli --addr HOST:PORT ping\n\
     \x20      mffv-cli --addr HOST:PORT shutdown [--abort]"
}

fn run(argv: &[String]) -> Result<(), String> {
    let mut addr: Option<String> = None;
    let mut command: Option<String> = None;
    let mut spec_path: Option<String> = None;
    let mut cancel_after: Option<usize> = None;
    let mut preconditioner: Option<PreconditionerKind> = None;
    let mut quiet = false;
    let mut abort = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--preconditioner" => {
                preconditioner = Some(
                    it.next()
                        .and_then(|v| PreconditionerKind::parse(v))
                        .ok_or_else(|| {
                            "--preconditioner needs `jacobi`, `mg` or `none`".to_string()
                        })?,
                )
            }
            "--addr" => {
                addr = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| "--addr needs a value".to_string())?,
                )
            }
            "--cancel-after-iters" => {
                cancel_after = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| "--cancel-after-iters needs an integer".to_string())?,
                )
            }
            "--quiet" => quiet = true,
            "--abort" => abort = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other if command.is_none() => command = Some(other.to_string()),
            other if command.as_deref() == Some("submit") && spec_path.is_none() => {
                spec_path = Some(other.to_string())
            }
            other => return Err(format!("unexpected argument `{other}`\n{}", usage())),
        }
    }
    let addr = addr.ok_or_else(|| format!("--addr is required\n{}", usage()))?;
    match command.as_deref() {
        Some("ping") => {
            let mut client = connect(&addr)?;
            client.ping(0xC0FFEE).map_err(|e| e.to_string())?;
            println!(
                "pong from {} (session {})",
                client.banner(),
                client.session()
            );
            client.close();
            Ok(())
        }
        Some("shutdown") => {
            let mut client = connect(&addr)?;
            let mode = if abort {
                WireShutdownMode::Abort
            } else {
                WireShutdownMode::Drain
            };
            client.request_shutdown(mode).map_err(|e| e.to_string())?;
            println!("shutdown requested ({mode:?})");
            Ok(())
        }
        Some("submit") => {
            let path = spec_path.ok_or_else(|| format!("submit needs a spec file\n{}", usage()))?;
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let mut job = parse_spec(&text).map_err(|e| e.to_string())?;
            if let Some(kind) = preconditioner {
                // The flag wins over any `preconditioner =` line in the spec.
                job.config.preconditioner = kind;
            }
            let mut client = connect(&addr)?;
            if !quiet {
                println!(
                    "session {} @ {}: submitting `{}` on {}",
                    client.session(),
                    client.banner(),
                    job.workload.name,
                    job.backend.name()
                );
            }
            let run = client
                .run_job(&job, |seq, event| {
                    render_event(seq, event, quiet);
                    match cancel_after {
                        Some(n) if is_iteration_at_least(event, n) => ClientControl::Cancel,
                        _ => ClientControl::Continue,
                    }
                })
                .map_err(|e| e.to_string())?;
            client.close();
            match run.end {
                JobEnd::Done(report) => {
                    println!(
                        "done: {} converged={} iters={} final_rmax={:.3e} ({} events streamed)",
                        report.backend,
                        report.history.converged,
                        report.history.iterations,
                        report.final_residual_max,
                        run.events.len()
                    );
                    Ok(())
                }
                JobEnd::Stopped { reason, report } => {
                    println!(
                        "stopped: {} after {} events{}",
                        reason.label(),
                        run.events.len(),
                        report
                            .map(|r| format!(" (partial: {} iters)", r.history.iterations))
                            .unwrap_or_default()
                    );
                    // A cancel we asked for is a success for the CLI.
                    if cancel_after.is_some() {
                        Ok(())
                    } else {
                        Err(format!("solve stopped early: {}", reason.label()))
                    }
                }
                JobEnd::Busy { depth, capacity } => Err(format!(
                    "daemon busy: session window {depth}/{capacity} full"
                )),
                JobEnd::Rejected(reason) => Err(format!("rejected: {reason}")),
                JobEnd::Failed(error) => Err(format!("failed: {error}")),
            }
        }
        Some(other) => Err(format!("unknown command `{other}`\n{}", usage())),
        None => Err(usage().to_string()),
    }
}

fn connect(addr: &str) -> Result<Client, String> {
    Client::connect(addr, "mffv-cli").map_err(|e| format!("cannot connect to {addr}: {e}"))
}

fn is_iteration_at_least(event: &SolveEvent, n: usize) -> bool {
    matches!(event, SolveEvent::Iteration { k, .. } if *k >= n)
}

fn render_event(seq: u64, event: &SolveEvent, quiet: bool) {
    if quiet {
        return;
    }
    match event {
        SolveEvent::Started { initial_rr } => {
            println!("  [{seq:>4}] started   rr={initial_rr:.6e}")
        }
        SolveEvent::Iteration { k, rr } => {
            // Thin the live render (the full stream is still recorded);
            // early iterations and every 32nd keep the output readable.
            if *k < 8 || k.is_multiple_of(32) {
                println!("  [{seq:>4}] iter {k:>5} rr={rr:.6e}");
            }
        }
        SolveEvent::Converged { iterations, rr } => {
            println!("  [{seq:>4}] converged at iter {iterations} rr={rr:.6e}")
        }
        SolveEvent::Stopped(reason) => {
            println!("  [{seq:>4}] stopped: {}", reason.label())
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("mffv-cli: {message}");
            ExitCode::FAILURE
        }
    }
}
