//! The solve daemon binary.
//!
//! ```text
//! mffv-serve [--addr 127.0.0.1:7419] [--workers N] [--queue-capacity N]
//!            [--session-window N] [--max-session-seconds S]
//!            [--port-file PATH] [--metrics]
//! ```
//!
//! Binds, prints the bound address (and writes it to `--port-file` if given,
//! for scripts binding port 0), then serves until a client sends a
//! `Shutdown` frame — `Drain` finishes every accepted job first, `Abort`
//! cancels at the next iteration boundary.

use mffv_serve::{RunningServer, ServeConfig, Server};
use mffv_telemetry::MetricsRegistry;
use std::process::ExitCode;

struct Args {
    config: ServeConfig,
    port_file: Option<String>,
    metrics: bool,
}

fn usage() -> &'static str {
    "usage: mffv-serve [--addr HOST:PORT] [--workers N] [--queue-capacity N]\n\
     \x20                 [--session-window N] [--max-session-seconds S]\n\
     \x20                 [--port-file PATH] [--metrics]"
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut config = ServeConfig::default();
    let mut port_file = None;
    let mut metrics = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers needs an integer".to_string())?
            }
            "--queue-capacity" => {
                config.queue_capacity = value("--queue-capacity")?
                    .parse()
                    .map_err(|_| "--queue-capacity needs an integer".to_string())?
            }
            "--session-window" => {
                config.session_window = value("--session-window")?
                    .parse()
                    .map_err(|_| "--session-window needs an integer".to_string())?
            }
            "--max-session-seconds" => {
                config.max_session_seconds = Some(
                    value("--max-session-seconds")?
                        .parse()
                        .map_err(|_| "--max-session-seconds needs a number".to_string())?,
                )
            }
            "--port-file" => port_file = Some(value("--port-file")?),
            "--metrics" => metrics = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(Args {
        config,
        port_file,
        metrics,
    })
}

fn run(args: Args) -> Result<(), String> {
    let registry = args.metrics.then(MetricsRegistry::new);
    let mut server = Server::new(args.config);
    if let Some(registry) = &registry {
        server = server.with_metrics(registry.clone());
    }
    let running: RunningServer = server.bind().map_err(|e| format!("bind failed: {e}"))?;
    let addr = running.local_addr();
    println!("mffv-serve listening on {addr}");
    if let Some(path) = &args.port_file {
        std::fs::write(path, format!("{addr}\n"))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    let mode = running.wait_for_shutdown_request();
    println!("mffv-serve shutting down ({mode:?})");
    running.shutdown(mode);
    if let Some(registry) = &registry {
        let snapshot = registry.snapshot();
        for (name, value) in &snapshot.counters {
            println!("  {name} = {value}");
        }
        for (name, value) in &snapshot.gauges {
            println!("  {name} = {value}");
        }
    }
    println!("mffv-serve stopped");
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("mffv-serve: {message}");
            ExitCode::FAILURE
        }
    }
}
