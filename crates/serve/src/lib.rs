#![forbid(unsafe_code)]
//! # mffv-serve — the solve daemon and its wire protocol
//!
//! Turns the in-process engine service into a network service: a
//! long-running TCP daemon (`mffv-serve`) that accepts solve jobs over a
//! hand-rolled framed binary protocol, streams live convergence events back
//! per session, and drains cleanly on shutdown — plus the `mffv-cli` client
//! that submits spec files and renders the stream.  Pure `std::net`; no
//! async runtime, no serde.
//!
//! ## The protocol in one frame
//!
//! ```text
//! [u32 BE len][u8 version][u8 frame-tag][body…][u32 BE FNV-1a checksum]
//! ```
//!
//! Integers are big-endian, `f64`s travel as [`f64::to_bits`] — so a
//! streamed residual is **bitwise** the one the solver computed, and a
//! client recording the stream reproduces the in-process convergence
//! history exactly.  Every malformed input (truncated, corrupt, oversized,
//! unknown tag, wrong version) decodes to a typed [`WireError`], never a
//! panic.  See [`frame`] for the frame vocabulary and [`wire`] for the
//! per-type layouts.
//!
//! ## Serving model
//!
//! * one TCP connection = one session; at most
//!   [`ServeConfig::session_window`] jobs outstanding per session — the
//!   window overflowing is a typed `Busy` reply, not a hang;
//! * accepted jobs are dispatched round-robin across sessions into the
//!   bounded engine queue, so concurrent clients interleave fairly even
//!   with the queue full;
//! * a `Cancel` frame trips that one job's [`CancelToken`] — the solve
//!   stops at its next iteration boundary; other sessions' jobs are
//!   untouched; a dropped connection cancels its orphans the same way;
//! * shutdown is `Drain` (finish everything accepted) or `Abort` (cancel
//!   at the next boundary), mirroring the engine service.
//!
//! ## Quick start
//!
//! ```no_run
//! use mffv_serve::prelude::*;
//! use mffv_mesh::WorkloadSpec;
//!
//! let server = Server::new(ServeConfig::on("127.0.0.1:0")).bind().unwrap();
//! let addr = server.local_addr();
//!
//! let mut client = Client::connect(addr, "example").unwrap();
//! let job = WireJobSpec::new(WorkloadSpec::quickstart(), BackendSel::HostF64);
//! let run = client
//!     .run_job(&job, |_seq, _event| ClientControl::Continue)
//!     .unwrap();
//! assert!(run.is_done());
//! client.close();
//! server.shutdown(WireShutdownMode::Drain);
//! ```

pub mod client;
pub mod frame;
pub mod server;
pub mod specfile;
pub mod wire;

pub use client::{Client, ClientControl, JobEnd, JobRun};
pub use frame::{Frame, WireShutdownMode, MAX_FRAME_LEN, WIRE_VERSION};
pub use server::{RunningServer, ServeConfig, Server};
pub use specfile::{parse_spec, SpecError};
pub use wire::{BackendSel, WireError, WireJobSpec, WirePolicy};
// The session-control vocabulary, re-exported for client code.
pub use mffv_solver::monitor::{CancelToken, SolveEvent, StopReason};

/// Convenient glob import for daemon embedders, clients and tests.
pub mod prelude {
    pub use crate::client::{Client, ClientControl, JobEnd, JobRun};
    pub use crate::frame::{Frame, WireShutdownMode, MAX_FRAME_LEN, WIRE_VERSION};
    pub use crate::server::{RunningServer, ServeConfig, Server};
    pub use crate::specfile::{parse_spec, SpecError};
    pub use crate::wire::{BackendSel, WireError, WireJobSpec, WirePolicy};
    pub use mffv_solver::monitor::{SolveEvent, StopReason};
}
