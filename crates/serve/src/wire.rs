//! Wire codecs: explicit, hand-rolled binary encode/decode for every domain
//! type the solve daemon ships over a socket.
//!
//! No serde, no reflection — each type states its own layout, in the spirit
//! of irdest's MREP encoding frames:
//!
//! * integers are **big-endian** (`u8`/`u16`/`u32`/`u64`);
//! * `bool` is one byte (`0`/`1`; anything else is malformed);
//! * `f64` travels as the big-endian bytes of [`f64::to_bits`], so values
//!   round-trip **bitwise** — the serving contract is that a streamed
//!   residual equals the in-process one to the last bit, and a lossy text
//!   float would break it;
//! * `Option<T>` is a one-byte presence marker followed by `T`;
//! * `String`/`Vec<T>` carry a `u32` length prefix;
//! * enums carry a leading `u8` variant tag (unknown tags are typed
//!   [`WireError::UnknownTag`] decode errors, never panics).
//!
//! Malformed input of any shape — truncated, oversized, wrong tag, non-UTF-8
//! — surfaces as a [`WireError`]; decoding never panics and never allocates
//! more than the input could actually contain.  Frame-level concerns
//! (version byte, frame-type tag, checksum) live one layer up in
//! [`crate::frame`].

use mffv_engine::Backend;
use mffv_gpu_ref::GpuSpec;
use mffv_mesh::workload::BoundarySpec;
use mffv_mesh::{
    CellField, CellIndex, Dims, DtPolicy, PermeabilityModel, TransientSpec, Well, WellControl,
    WellSet, WorkloadSpec,
};
use mffv_solver::backend::{
    DeviceSection, Precision, PreconditionerKind, SolveConfig, SolveReport,
};
use mffv_solver::convergence::ConvergenceHistory;
use mffv_solver::monitor::{SolveEvent, StopPolicy, StopReason};
use std::time::Duration;

/// Typed decode/transport failure.  Every malformed input maps onto one of
/// these variants; the wire layer has no panicking path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the announced content did.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The frame's version byte is not one this peer speaks.
    BadVersion {
        /// Version byte received.
        got: u8,
        /// Version this peer implements.
        expected: u8,
    },
    /// An enum/frame tag byte outside the known set.
    UnknownTag {
        /// Which tagged type was being decoded.
        context: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// The frame checksum did not match its payload.
    ChecksumMismatch {
        /// Checksum recomputed over the received payload.
        expected: u32,
        /// Checksum carried by the frame.
        got: u32,
    },
    /// A declared length exceeds the protocol bound (or the bytes present).
    Oversized {
        /// Declared length.
        len: usize,
        /// Maximum this peer accepts.
        max: usize,
    },
    /// Decoding finished with unconsumed payload bytes left over.
    TrailingBytes {
        /// Bytes left unread.
        remaining: usize,
    },
    /// Structurally valid bytes with an invalid meaning (bad bool byte,
    /// non-UTF-8 string, field-count mismatch, …).
    Malformed(String),
    /// The underlying socket failed (read/write/connect).
    Io(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, available } => {
                write!(f, "truncated input: needed {needed} bytes, had {available}")
            }
            WireError::BadVersion { got, expected } => {
                write!(
                    f,
                    "unsupported protocol version {got} (this peer speaks {expected})"
                )
            }
            WireError::UnknownTag { context, tag } => {
                write!(f, "unknown {context} tag {tag:#04x}")
            }
            WireError::ChecksumMismatch { expected, got } => {
                write!(
                    f,
                    "frame checksum mismatch: computed {expected:#010x}, frame carried {got:#010x}"
                )
            }
            WireError::Oversized { len, max } => {
                write!(f, "declared length {len} exceeds the {max}-byte bound")
            }
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after a complete decode")
            }
            WireError::Malformed(detail) => write!(f, "malformed payload: {detail}"),
            WireError::Io(detail) => write!(f, "transport error: {detail}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.to_string())
    }
}

/// Append-only big-endian byte sink.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// One raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Big-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// `usize` as big-endian `u64` (lossless on every supported platform).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// One byte, `0`/`1`.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Bitwise `f64` via [`f64::to_bits`].
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// `u32` length prefix + UTF-8 bytes.
    pub fn put_str(&mut self, v: &str) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Presence marker + value.
    pub fn put_opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(value) => {
                self.put_bool(true);
                self.put_f64(value);
            }
            None => self.put_bool(false),
        }
    }

    /// Presence marker + value.
    pub fn put_opt_usize(&mut self, v: Option<usize>) {
        match v {
            Some(value) => {
                self.put_bool(true);
                self.put_usize(value);
            }
            None => self.put_bool(false),
        }
    }

    /// `u32` count prefix + bitwise values.
    pub fn put_f64_slice(&mut self, values: &[f64]) {
        self.put_u32(values.len() as u32);
        for &v in values {
            self.put_f64(v);
        }
    }
}

/// Cursor over received bytes; every read is bounds-checked and every
/// failure is a typed [`WireError`].
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    version: u8,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, decoding at the current protocol version.
    pub fn new(buf: &'a [u8]) -> Self {
        Self {
            buf,
            pos: 0,
            version: crate::frame::WIRE_VERSION,
        }
    }

    /// A reader decoding at an explicit (older) protocol version.  Codecs
    /// consult [`ByteReader::version`] to skip fields the sender never wrote.
    pub fn with_version(buf: &'a [u8], version: u8) -> Self {
        Self {
            buf,
            pos: 0,
            version,
        }
    }

    /// The protocol version the bytes were encoded at.
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Take `n` bytes, or fail typed.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Fail with [`WireError::TrailingBytes`] unless fully consumed.
    pub fn finish(&self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            remaining => Err(WireError::TrailingBytes { remaining }),
        }
    }

    /// One raw byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Big-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Big-endian `u64` narrowed to `usize` (typed failure on overflow).
    pub fn usize(&mut self) -> Result<usize, WireError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| WireError::Malformed(format!("{v} does not fit in usize")))
    }

    /// Strict `0`/`1` byte.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::Malformed(format!("bool byte {other:#04x}"))),
        }
    }

    /// Bitwise `f64` via [`f64::from_bits`].
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// `u32`-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| WireError::Malformed(format!("non-UTF-8 string: {e}")))
    }

    /// Presence marker + value.
    pub fn opt_f64(&mut self) -> Result<Option<f64>, WireError> {
        Ok(if self.bool()? {
            Some(self.f64()?)
        } else {
            None
        })
    }

    /// Presence marker + value.
    pub fn opt_usize(&mut self) -> Result<Option<usize>, WireError> {
        Ok(if self.bool()? {
            Some(self.usize()?)
        } else {
            None
        })
    }

    /// `u32`-prefixed bitwise `f64` values.  The count is validated against
    /// the bytes actually present before anything is allocated, so a forged
    /// length cannot drive an allocation the input does not pay for.
    pub fn f64_vec(&mut self) -> Result<Vec<f64>, WireError> {
        let count = self.u32()? as usize;
        if count.saturating_mul(8) > self.remaining() {
            return Err(WireError::Truncated {
                needed: count * 8,
                available: self.remaining(),
            });
        }
        let mut values = Vec::with_capacity(count);
        for _ in 0..count {
            values.push(self.f64()?);
        }
        Ok(values)
    }

    /// A collection count, validated against at least one byte per element.
    pub fn count(&mut self, context: &'static str) -> Result<usize, WireError> {
        let count = self.u32()? as usize;
        if count > self.remaining() {
            return Err(WireError::Malformed(format!(
                "{context} count {count} exceeds the {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(count)
    }
}

/// Types with an explicit wire layout.
pub trait WireEncode {
    /// Append this value's bytes to `w`.
    fn encode(&self, w: &mut ByteWriter);
}

/// Types decodable from their wire layout.
pub trait WireDecode: Sized {
    /// Read one value from `r`.
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError>;
}

/// Encode a value to a fresh byte vector.
pub fn to_bytes<T: WireEncode>(value: &T) -> Vec<u8> {
    let mut w = ByteWriter::new();
    value.encode(&mut w);
    w.into_bytes()
}

/// Decode exactly one value from `bytes` (trailing bytes are an error).
pub fn from_bytes<T: WireDecode>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = ByteReader::new(bytes);
    let value = T::decode(&mut r)?;
    r.finish()?;
    Ok(value)
}

// ---------------------------------------------------------------------------
// Session vocabulary: StopReason, SolveEvent
// ---------------------------------------------------------------------------

impl WireEncode for StopReason {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(match self {
            StopReason::Cancelled => 0,
            StopReason::DeadlineExpired => 1,
            StopReason::IterationBudget => 2,
            StopReason::Stagnated => 3,
            StopReason::Diverged => 4,
            StopReason::MonitorRequest => 5,
            // Tag 6 shipped with wire version 3; a version-2 peer that has
            // never seen a Breakdown stream decodes everything else as before.
            StopReason::Breakdown => 6,
        });
    }
}

impl WireDecode for StopReason {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(StopReason::Cancelled),
            1 => Ok(StopReason::DeadlineExpired),
            2 => Ok(StopReason::IterationBudget),
            3 => Ok(StopReason::Stagnated),
            4 => Ok(StopReason::Diverged),
            5 => Ok(StopReason::MonitorRequest),
            6 => Ok(StopReason::Breakdown),
            tag => Err(WireError::UnknownTag {
                context: "StopReason",
                tag,
            }),
        }
    }
}

impl WireEncode for SolveEvent {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            SolveEvent::Started { initial_rr } => {
                w.put_u8(0);
                w.put_f64(*initial_rr);
            }
            SolveEvent::Iteration { k, rr } => {
                w.put_u8(1);
                w.put_usize(*k);
                w.put_f64(*rr);
            }
            SolveEvent::Converged { iterations, rr } => {
                w.put_u8(2);
                w.put_usize(*iterations);
                w.put_f64(*rr);
            }
            SolveEvent::Stopped(reason) => {
                w.put_u8(3);
                reason.encode(w);
            }
        }
    }
}

impl WireDecode for SolveEvent {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(SolveEvent::Started {
                initial_rr: r.f64()?,
            }),
            1 => Ok(SolveEvent::Iteration {
                k: r.usize()?,
                rr: r.f64()?,
            }),
            2 => Ok(SolveEvent::Converged {
                iterations: r.usize()?,
                rr: r.f64()?,
            }),
            3 => Ok(SolveEvent::Stopped(StopReason::decode(r)?)),
            tag => Err(WireError::UnknownTag {
                context: "SolveEvent",
                tag,
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Solve settings: Precision, SolveConfig
// ---------------------------------------------------------------------------

impl WireEncode for Precision {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(match self {
            Precision::F32 => 0,
            Precision::F64 => 1,
        });
    }
}

impl WireDecode for Precision {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(Precision::F32),
            1 => Ok(Precision::F64),
            tag => Err(WireError::UnknownTag {
                context: "Precision",
                tag,
            }),
        }
    }
}

impl WireEncode for PreconditionerKind {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(match self {
            PreconditionerKind::None => 0,
            PreconditionerKind::Jacobi => 1,
            PreconditionerKind::Mg => 2,
        });
    }
}

impl WireDecode for PreconditionerKind {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(PreconditionerKind::None),
            1 => Ok(PreconditionerKind::Jacobi),
            2 => Ok(PreconditionerKind::Mg),
            tag => Err(WireError::UnknownTag {
                context: "PreconditionerKind",
                tag,
            }),
        }
    }
}

impl WireEncode for SolveConfig {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_opt_f64(self.tolerance);
        w.put_opt_usize(self.max_iterations);
        self.precision.encode(w);
        w.put_opt_usize(self.threads);
        // Version 2 appends the preconditioner selection.
        self.preconditioner.encode(w);
    }
}

impl WireDecode for SolveConfig {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(SolveConfig {
            tolerance: r.opt_f64()?,
            max_iterations: r.opt_usize()?,
            precision: Precision::decode(r)?,
            threads: r.opt_usize()?,
            // Version-1 senders never wrote the trailing preconditioner byte;
            // treat their configs as "no preconditioner" (the old behaviour).
            preconditioner: if r.version() >= 2 {
                PreconditionerKind::decode(r)?
            } else {
                PreconditionerKind::None
            },
        })
    }
}

// ---------------------------------------------------------------------------
// Geometry and workload: Dims, CellIndex, PermeabilityModel, BoundarySpec,
// WorkloadSpec
// ---------------------------------------------------------------------------

impl WireEncode for Dims {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.nx);
        w.put_usize(self.ny);
        w.put_usize(self.nz);
    }
}

impl WireDecode for Dims {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(Dims::new(r.usize()?, r.usize()?, r.usize()?))
    }
}

impl WireEncode for CellIndex {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.x);
        w.put_usize(self.y);
        w.put_usize(self.z);
    }
}

impl WireDecode for CellIndex {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(CellIndex::new(r.usize()?, r.usize()?, r.usize()?))
    }
}

impl WireEncode for PermeabilityModel {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            PermeabilityModel::Homogeneous { value } => {
                w.put_u8(0);
                w.put_f64(*value);
            }
            PermeabilityModel::Layered { layer_values } => {
                w.put_u8(1);
                w.put_f64_slice(layer_values);
            }
            PermeabilityModel::LogNormal {
                mean_log,
                std_log,
                seed,
            } => {
                w.put_u8(2);
                w.put_f64(*mean_log);
                w.put_f64(*std_log);
                w.put_u64(*seed);
            }
            PermeabilityModel::Channelized {
                background,
                channel,
                num_channels,
                half_width,
                amplitude,
                seed,
            } => {
                w.put_u8(3);
                w.put_f64(*background);
                w.put_f64(*channel);
                w.put_usize(*num_channels);
                w.put_f64(*half_width);
                w.put_f64(*amplitude);
                w.put_u64(*seed);
            }
        }
    }
}

impl WireDecode for PermeabilityModel {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(PermeabilityModel::Homogeneous { value: r.f64()? }),
            1 => Ok(PermeabilityModel::Layered {
                layer_values: r.f64_vec()?,
            }),
            2 => Ok(PermeabilityModel::LogNormal {
                mean_log: r.f64()?,
                std_log: r.f64()?,
                seed: r.u64()?,
            }),
            3 => Ok(PermeabilityModel::Channelized {
                background: r.f64()?,
                channel: r.f64()?,
                num_channels: r.usize()?,
                half_width: r.f64()?,
                amplitude: r.f64()?,
                seed: r.u64()?,
            }),
            tag => Err(WireError::UnknownTag {
                context: "PermeabilityModel",
                tag,
            }),
        }
    }
}

impl WireEncode for BoundarySpec {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            BoundarySpec::SourceProducer {
                source_pressure,
                producer_pressure,
            } => {
                w.put_u8(0);
                w.put_f64(*source_pressure);
                w.put_f64(*producer_pressure);
            }
            BoundarySpec::XFaces {
                left_pressure,
                right_pressure,
            } => {
                w.put_u8(1);
                w.put_f64(*left_pressure);
                w.put_f64(*right_pressure);
            }
            BoundarySpec::None => w.put_u8(2),
        }
    }
}

impl WireDecode for BoundarySpec {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(BoundarySpec::SourceProducer {
                source_pressure: r.f64()?,
                producer_pressure: r.f64()?,
            }),
            1 => Ok(BoundarySpec::XFaces {
                left_pressure: r.f64()?,
                right_pressure: r.f64()?,
            }),
            2 => Ok(BoundarySpec::None),
            tag => Err(WireError::UnknownTag {
                context: "BoundarySpec",
                tag,
            }),
        }
    }
}

impl WireEncode for WorkloadSpec {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_str(&self.name);
        self.dims.encode(w);
        for s in self.spacing {
            w.put_f64(s);
        }
        self.permeability.encode(w);
        w.put_f64(self.viscosity);
        self.boundary.encode(w);
        w.put_f64(self.tolerance);
        w.put_usize(self.max_iterations);
    }
}

impl WireDecode for WorkloadSpec {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(WorkloadSpec {
            name: r.str()?,
            dims: Dims::decode(r)?,
            spacing: [r.f64()?, r.f64()?, r.f64()?],
            permeability: PermeabilityModel::decode(r)?,
            viscosity: r.f64()?,
            boundary: BoundarySpec::decode(r)?,
            tolerance: r.f64()?,
            max_iterations: r.usize()?,
        })
    }
}

// ---------------------------------------------------------------------------
// Transients: WellControl, Well, WellSet, DtPolicy, TransientSpec
// ---------------------------------------------------------------------------

impl WireEncode for WellControl {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            WellControl::Rate { volumetric_rate } => {
                w.put_u8(0);
                w.put_f64(*volumetric_rate);
            }
            WellControl::Bhp {
                pressure,
                productivity_index,
            } => {
                w.put_u8(1);
                w.put_f64(*pressure);
                w.put_f64(*productivity_index);
            }
        }
    }
}

impl WireDecode for WellControl {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(WellControl::Rate {
                volumetric_rate: r.f64()?,
            }),
            1 => Ok(WellControl::Bhp {
                pressure: r.f64()?,
                productivity_index: r.f64()?,
            }),
            tag => Err(WireError::UnknownTag {
                context: "WellControl",
                tag,
            }),
        }
    }
}

impl WireEncode for Well {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_str(&self.name);
        self.cell.encode(w);
        self.control.encode(w);
        w.put_f64(self.start_time);
        w.put_f64(self.end_time);
    }
}

impl WireDecode for Well {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(Well {
            name: r.str()?,
            cell: CellIndex::decode(r)?,
            control: WellControl::decode(r)?,
            start_time: r.f64()?,
            end_time: r.f64()?,
        })
    }
}

impl WireEncode for WellSet {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.wells().len() as u32);
        for well in self.wells() {
            well.encode(w);
        }
    }
}

impl WireDecode for WellSet {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let count = r.count("well")?;
        let mut wells = Vec::with_capacity(count);
        for _ in 0..count {
            wells.push(Well::decode(r)?);
        }
        Ok(WellSet::new(wells))
    }
}

impl WireEncode for DtPolicy {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            DtPolicy::Fixed { dt } => {
                w.put_u8(0);
                w.put_f64(*dt);
            }
            DtPolicy::Ramp {
                initial,
                growth,
                max,
            } => {
                w.put_u8(1);
                w.put_f64(*initial);
                w.put_f64(*growth);
                w.put_f64(*max);
            }
        }
    }
}

impl WireDecode for DtPolicy {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(DtPolicy::Fixed { dt: r.f64()? }),
            1 => Ok(DtPolicy::Ramp {
                initial: r.f64()?,
                growth: r.f64()?,
                max: r.f64()?,
            }),
            tag => Err(WireError::UnknownTag {
                context: "DtPolicy",
                tag,
            }),
        }
    }
}

impl WireEncode for TransientSpec {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_f64(self.total_time);
        self.dt.encode(w);
        w.put_f64(self.total_compressibility);
        self.wells.encode(w);
        w.put_opt_f64(self.initial_pressure);
        w.put_f64_slice(&self.snapshot_times);
        w.put_bool(self.warm_start);
    }
}

impl WireDecode for TransientSpec {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(TransientSpec {
            total_time: r.f64()?,
            dt: DtPolicy::decode(r)?,
            total_compressibility: r.f64()?,
            wells: WellSet::decode(r)?,
            initial_pressure: r.opt_f64()?,
            snapshot_times: r.f64_vec()?,
            warm_start: r.bool()?,
        })
    }
}

// ---------------------------------------------------------------------------
// Results: ConvergenceHistory, CellField<f64>, DeviceSection, SolveReport
// ---------------------------------------------------------------------------

impl WireEncode for ConvergenceHistory {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_f64_slice(&self.residual_norms_squared);
        w.put_bool(self.converged);
        w.put_usize(self.iterations);
    }
}

impl WireDecode for ConvergenceHistory {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(ConvergenceHistory {
            residual_norms_squared: r.f64_vec()?,
            converged: r.bool()?,
            iterations: r.usize()?,
        })
    }
}

impl WireEncode for CellField<f64> {
    fn encode(&self, w: &mut ByteWriter) {
        self.dims().encode(w);
        w.put_f64_slice(self.as_slice());
    }
}

impl WireDecode for CellField<f64> {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let dims = Dims::decode(r)?;
        let data = r.f64_vec()?;
        if data.len() != dims.num_cells() {
            return Err(WireError::Malformed(format!(
                "cell field carries {} values for a {} grid of {} cells",
                data.len(),
                dims,
                dims.num_cells()
            )));
        }
        Ok(CellField::from_vec(dims, data))
    }
}

impl WireEncode for DeviceSection {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_str(&self.device);
        w.put_f64(self.modelled_time_seconds);
        w.put_u32(self.counters.len() as u32);
        for (name, value) in &self.counters {
            w.put_str(name);
            w.put_f64(*value);
        }
    }
}

impl WireDecode for DeviceSection {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let device = r.str()?;
        let modelled_time_seconds = r.f64()?;
        let count = r.count("device counter")?;
        let mut counters = Vec::with_capacity(count);
        for _ in 0..count {
            counters.push((r.str()?, r.f64()?));
        }
        Ok(DeviceSection {
            device,
            modelled_time_seconds,
            counters,
        })
    }
}

impl WireEncode for SolveReport {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_str(&self.backend);
        self.pressure.encode(w);
        self.history.encode(w);
        w.put_f64(self.final_residual_max);
        w.put_f64(self.host_wall_seconds);
        match &self.device {
            Some(device) => {
                w.put_bool(true);
                device.encode(w);
            }
            None => w.put_bool(false),
        }
        match self.stopped {
            Some(reason) => {
                w.put_bool(true);
                reason.encode(w);
            }
            None => w.put_bool(false),
        }
    }
}

impl WireDecode for SolveReport {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(SolveReport {
            backend: r.str()?,
            pressure: CellField::decode(r)?,
            history: ConvergenceHistory::decode(r)?,
            final_residual_max: r.f64()?,
            host_wall_seconds: r.f64()?,
            device: if r.bool()? {
                Some(DeviceSection::decode(r)?)
            } else {
                None
            },
            stopped: if r.bool()? {
                Some(StopReason::decode(r)?)
            } else {
                None
            },
        })
    }
}

// ---------------------------------------------------------------------------
// Jobs: BackendSel, WirePolicy, WireJobSpec
// ---------------------------------------------------------------------------

/// The backend catalog a client can request by tag.
///
/// [`Backend`] itself is not wire-encodable in full generality (custom GPU
/// specs carry `&'static str` names; dataflow options are an open set), so
/// the protocol restricts jobs to this standard catalog — the same set
/// [`Backend::standard_set`] exercises, plus the H100 GPU model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendSel {
    /// Host CG in `f64` (the §V-B oracle).
    HostF64,
    /// Host CG in `f32`.
    HostF32,
    /// Roofline GPU reference model, A100 spec.
    GpuRefA100,
    /// Roofline GPU reference model, H100 spec.
    GpuRefH100,
    /// The paper's dataflow (wafer-scale) backend.
    Dataflow,
}

impl BackendSel {
    /// Every catalog entry, in tag order.
    pub fn all() -> [BackendSel; 5] {
        [
            BackendSel::HostF64,
            BackendSel::HostF32,
            BackendSel::GpuRefA100,
            BackendSel::GpuRefH100,
            BackendSel::Dataflow,
        ]
    }

    /// The engine backend this selector names.
    pub fn to_backend(self) -> Backend {
        match self {
            BackendSel::HostF64 => Backend::host(),
            BackendSel::HostF32 => Backend::host_f32(),
            BackendSel::GpuRefA100 => Backend::gpu_ref(),
            BackendSel::GpuRefH100 => Backend::gpu_ref_on(GpuSpec::h100()),
            BackendSel::Dataflow => Backend::dataflow(),
        }
    }

    /// Stable CLI/spec-file name.
    pub fn name(self) -> &'static str {
        match self {
            BackendSel::HostF64 => "host",
            BackendSel::HostF32 => "host-f32",
            BackendSel::GpuRefA100 => "gpu-ref",
            BackendSel::GpuRefH100 => "gpu-ref-h100",
            BackendSel::Dataflow => "dataflow",
        }
    }

    /// Parse a CLI/spec-file name (the inverse of [`name`](Self::name),
    /// plus common aliases).
    pub fn parse(name: &str) -> Result<Self, WireError> {
        match name.trim() {
            "host" | "host-f64" => Ok(BackendSel::HostF64),
            "host-f32" => Ok(BackendSel::HostF32),
            "gpu-ref" | "gpu-ref-a100" => Ok(BackendSel::GpuRefA100),
            "gpu-ref-h100" => Ok(BackendSel::GpuRefH100),
            "dataflow" => Ok(BackendSel::Dataflow),
            other => Err(WireError::Malformed(format!(
                "unknown backend `{other}` (expected host, host-f32, gpu-ref, gpu-ref-h100 or dataflow)"
            ))),
        }
    }
}

impl WireEncode for BackendSel {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(match self {
            BackendSel::HostF64 => 0,
            BackendSel::HostF32 => 1,
            BackendSel::GpuRefA100 => 2,
            BackendSel::GpuRefH100 => 3,
            BackendSel::Dataflow => 4,
        });
    }
}

impl WireDecode for BackendSel {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(BackendSel::HostF64),
            1 => Ok(BackendSel::HostF32),
            2 => Ok(BackendSel::GpuRefA100),
            3 => Ok(BackendSel::GpuRefH100),
            4 => Ok(BackendSel::Dataflow),
            tag => Err(WireError::UnknownTag {
                context: "BackendSel",
                tag,
            }),
        }
    }
}

/// The declarative subset of a [`StopPolicy`] a client can request over the
/// wire.  Cancel tokens are inherently session-local (`Arc<AtomicBool>`);
/// the server arms one per accepted job and trips it on a `Cancel` frame,
/// so they never appear in the wire form.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WirePolicy {
    /// Stop after this many iterations ([`StopReason::IterationBudget`]).
    pub iteration_budget: Option<usize>,
    /// Wall-clock deadline in seconds ([`StopReason::DeadlineExpired`]).
    /// The server clamps this to its own per-session maximum.
    pub deadline_seconds: Option<f64>,
    /// `(window, min_rel_improvement)` stagnation rule.
    pub stagnation: Option<(usize, f64)>,
    /// Divergence factor ([`StopReason::Diverged`]).
    pub divergence_factor: Option<f64>,
}

impl WirePolicy {
    /// Whether no rule is requested.
    pub fn is_empty(&self) -> bool {
        self.iteration_budget.is_none()
            && self.deadline_seconds.is_none()
            && self.stagnation.is_none()
            && self.divergence_factor.is_none()
    }

    /// Build the solver-side policy, clamping the requested deadline to
    /// `max_deadline` (the server's per-session ceiling; `None` = no cap).
    /// A server with a ceiling applies it even when the client asked for no
    /// deadline at all.
    pub fn to_stop_policy(&self, max_deadline: Option<f64>) -> StopPolicy {
        let mut policy = StopPolicy::new();
        if let Some(budget) = self.iteration_budget {
            policy = policy.iteration_budget(budget);
        }
        let deadline = match (self.deadline_seconds, max_deadline) {
            (Some(requested), Some(ceiling)) => Some(requested.min(ceiling)),
            (Some(requested), None) => Some(requested),
            (None, Some(ceiling)) => Some(ceiling),
            (None, None) => None,
        };
        if let Some(seconds) = deadline {
            policy = policy.deadline(Duration::from_secs_f64(seconds.max(0.0)));
        }
        if let Some((window, min_rel)) = self.stagnation {
            policy = policy.stagnation(window, min_rel);
        }
        if let Some(factor) = self.divergence_factor {
            policy = policy.divergence(factor);
        }
        policy
    }
}

impl WireEncode for WirePolicy {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_opt_usize(self.iteration_budget);
        w.put_opt_f64(self.deadline_seconds);
        match self.stagnation {
            Some((window, min_rel)) => {
                w.put_bool(true);
                w.put_usize(window);
                w.put_f64(min_rel);
            }
            None => w.put_bool(false),
        }
        w.put_opt_f64(self.divergence_factor);
    }
}

impl WireDecode for WirePolicy {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(WirePolicy {
            iteration_budget: r.opt_usize()?,
            deadline_seconds: r.opt_f64()?,
            stagnation: if r.bool()? {
                Some((r.usize()?, r.f64()?))
            } else {
                None
            },
            divergence_factor: r.opt_f64()?,
        })
    }
}

/// The wire form of an engine [`JobSpec`](mffv_engine::JobSpec): everything
/// declarative about one solve — workload, backend selector, settings, seed,
/// stop rules, optional transient schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct WireJobSpec {
    /// The problem to solve.
    pub workload: WorkloadSpec,
    /// Catalog backend to run it on.
    pub backend: BackendSel,
    /// Cross-backend solve settings.
    pub config: SolveConfig,
    /// Optional permeability seed override.
    pub seed: Option<u64>,
    /// Declarative stop rules (the server adds its cancel token).
    pub policy: WirePolicy,
    /// When set, run the transient schedule instead of one steady solve.
    pub transient: Option<TransientSpec>,
}

impl WireJobSpec {
    /// A steady job with default settings.
    pub fn new(workload: WorkloadSpec, backend: BackendSel) -> Self {
        Self {
            workload,
            backend,
            config: SolveConfig::default(),
            seed: None,
            policy: WirePolicy::default(),
            transient: None,
        }
    }

    /// The engine job this spec describes.  `max_deadline` is the server's
    /// per-session deadline ceiling (see [`WirePolicy::to_stop_policy`]);
    /// session-local cancel tokens are attached by the caller afterwards via
    /// [`mffv_engine::JobSpec::with_stop_policy`]'s composition.
    pub fn to_job_spec(&self, max_deadline: Option<f64>) -> mffv_engine::JobSpec {
        let mut job = mffv_engine::JobSpec::new(self.workload.clone(), self.backend.to_backend())
            .with_config(self.config)
            .with_stop_policy(self.policy.to_stop_policy(max_deadline));
        if let Some(seed) = self.seed {
            job = job.with_seed(seed);
        }
        if let Some(transient) = &self.transient {
            job = job.with_transient(transient.clone());
        }
        job
    }
}

impl WireEncode for WireJobSpec {
    fn encode(&self, w: &mut ByteWriter) {
        self.workload.encode(w);
        self.backend.encode(w);
        self.config.encode(w);
        match self.seed {
            Some(seed) => {
                w.put_bool(true);
                w.put_u64(seed);
            }
            None => w.put_bool(false),
        }
        self.policy.encode(w);
        match &self.transient {
            Some(transient) => {
                w.put_bool(true);
                transient.encode(w);
            }
            None => w.put_bool(false),
        }
    }
}

impl WireDecode for WireJobSpec {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(WireJobSpec {
            workload: WorkloadSpec::decode(r)?,
            backend: BackendSel::decode(r)?,
            config: SolveConfig::decode(r)?,
            seed: if r.bool()? { Some(r.u64()?) } else { None },
            policy: WirePolicy::decode(r)?,
            transient: if r.bool()? {
                Some(TransientSpec::decode(r)?)
            } else {
                None
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_bytes<T: WireEncode + WireDecode>(value: &T) -> Vec<u8> {
        let bytes = to_bytes(value);
        let decoded: T = from_bytes(&bytes).expect("decode");
        let re_encoded = to_bytes(&decoded);
        assert_eq!(bytes, re_encoded, "encode∘decode is not byte-stable");
        bytes
    }

    #[test]
    fn primitives_roundtrip_bitwise() {
        let mut w = ByteWriter::new();
        w.put_u8(0xAB);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_bool(true);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_str("grüße");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert!(r.bool().unwrap());
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(r.str().unwrap(), "grüße");
        assert!(r.finish().is_ok());
    }

    #[test]
    fn malformed_primitives_are_typed_errors() {
        let mut r = ByteReader::new(&[2]);
        assert!(matches!(r.bool(), Err(WireError::Malformed(_))));
        let mut r = ByteReader::new(&[0, 0]);
        assert!(matches!(r.u32(), Err(WireError::Truncated { .. })));
        // A string length promising more than the buffer holds.
        let mut w = ByteWriter::new();
        w.put_u32(100);
        w.put_u8(b'x');
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.str(), Err(WireError::Truncated { .. })));
        // Non-UTF-8 string bytes.
        let mut w = ByteWriter::new();
        w.put_u32(2);
        w.put_u8(0xFF);
        w.put_u8(0xFE);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.str(), Err(WireError::Malformed(_))));
    }

    #[test]
    fn forged_f64_count_cannot_drive_allocation() {
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.f64_vec(), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn domain_types_roundtrip_byte_stable() {
        roundtrip_bytes(&StopReason::Stagnated);
        roundtrip_bytes(&StopReason::Breakdown);
        roundtrip_bytes(&SolveEvent::Iteration { k: 17, rr: 1e-12 });
        roundtrip_bytes(&SolveEvent::Stopped(StopReason::Breakdown));
        roundtrip_bytes(&SolveConfig {
            tolerance: Some(3e-11),
            max_iterations: None,
            precision: Precision::F32,
            threads: Some(4),
            preconditioner: PreconditionerKind::Mg,
        });
        for kind in PreconditionerKind::ALL {
            roundtrip_bytes(&kind);
        }
        roundtrip_bytes(&WorkloadSpec::quickstart());
        roundtrip_bytes(&WorkloadSpec::fig5(Dims::new(12, 12, 4)));
        roundtrip_bytes(
            &TransientSpec::new(30.0, 1.5, 1e-9)
                .with_wells(WellSet::empty().with(Well::rate("inj", CellIndex::new(2, 3, 1), 0.25)))
                .with_initial_pressure(1e7),
        );
        roundtrip_bytes(&WirePolicy {
            iteration_budget: Some(500),
            deadline_seconds: Some(2.5),
            stagnation: Some((25, 1e-3)),
            divergence_factor: Some(1e6),
        });
        for backend in BackendSel::all() {
            roundtrip_bytes(&backend);
            assert_eq!(BackendSel::parse(backend.name()).unwrap(), backend);
        }
    }

    #[test]
    fn version_one_solve_config_decodes_without_the_preconditioner_byte() {
        let config = SolveConfig {
            tolerance: Some(1e-9),
            max_iterations: Some(200),
            precision: Precision::F64,
            threads: None,
            preconditioner: PreconditionerKind::Mg,
        };
        let bytes = to_bytes(&config);
        // A version-1 sender stops before the trailing preconditioner byte.
        let v1_bytes = &bytes[..bytes.len() - 1];
        let mut r = ByteReader::with_version(v1_bytes, 1);
        let decoded = SolveConfig::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(decoded.preconditioner, PreconditionerKind::None);
        assert_eq!(decoded.tolerance, config.tolerance);
        assert_eq!(decoded.max_iterations, config.max_iterations);
        // The same truncated bytes at the current version are a typed error,
        // not a silent default.
        let mut strict = ByteReader::new(v1_bytes);
        assert!(matches!(
            SolveConfig::decode(&mut strict),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn solve_report_roundtrips_bitwise_including_the_pressure_field() {
        let report = mffv_engine::JobSpec::new(
            WorkloadSpec::quickstart().scaled(2),
            BackendSel::Dataflow.to_backend(),
        )
        .execute()
        .unwrap();
        let bytes = roundtrip_bytes(&report);
        let decoded: SolveReport = from_bytes(&bytes).unwrap();
        let bits = |r: &SolveReport| -> Vec<u64> {
            r.pressure.as_slice().iter().map(|v| v.to_bits()).collect()
        };
        assert_eq!(bits(&report), bits(&decoded));
        assert_eq!(
            report.history.residual_norms_squared,
            decoded.history.residual_norms_squared
        );
        assert!(decoded.device.is_some(), "device section survives");
    }

    #[test]
    fn wire_job_spec_builds_the_equivalent_engine_job() {
        let wire_job = WireJobSpec {
            seed: Some(7),
            policy: WirePolicy {
                iteration_budget: Some(100),
                ..WirePolicy::default()
            },
            ..WireJobSpec::new(WorkloadSpec::quickstart(), BackendSel::HostF32)
        };
        let job = wire_job.to_job_spec(Some(30.0));
        assert_eq!(job.backend.name(), "host-f32");
        assert_eq!(job.seed, Some(7));
        assert!(!job.stop_policy.is_empty());
        assert!(job.transient.is_none());
    }

    #[test]
    fn cell_field_length_mismatch_is_malformed() {
        let mut w = ByteWriter::new();
        Dims::new(2, 2, 2).encode(&mut w);
        w.put_f64_slice(&[1.0, 2.0, 3.0]); // 3 values for an 8-cell grid
        let err = from_bytes::<CellField<f64>>(&w.into_bytes()).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)), "{err}");
    }
}
