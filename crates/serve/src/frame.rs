//! Framing: the unit of exchange between daemon and client.
//!
//! Every frame travels as
//!
//! ```text
//! [u32 BE payload-len][payload]
//! payload = [u8 version][u8 frame-tag][body…][u32 BE FNV-1a checksum]
//! ```
//!
//! where the checksum covers `version + tag + body`.  The length prefix is
//! bounded by [`MAX_FRAME_LEN`]; a header announcing more is rejected before
//! any allocation, so a hostile peer cannot make the daemon reserve memory
//! it never sends.  The version byte is checked before the tag, so a future
//! protocol revision can change everything after it.

use crate::wire::{
    from_bytes, to_bytes, ByteReader, ByteWriter, WireDecode, WireEncode, WireError, WireJobSpec,
};
use mffv_solver::backend::SolveReport;
use mffv_solver::monitor::{SolveEvent, StopReason};
use std::io::{Read, Write};

/// The protocol revision this build speaks.  Version 2 added the trailing
/// preconditioner byte to `SolveConfig`; version-1 frames still decode, with
/// the preconditioner defaulting to `None`.  Version 3 added the
/// `StopReason::Breakdown` tag (a solver-side numerical breakdown now ends
/// its event stream with a terminal `Stopped` instead of silence); frames
/// that never carry that tag are byte-identical to version 2.
pub const WIRE_VERSION: u8 = 3;

/// The oldest protocol revision this build still decodes.
pub const MIN_WIRE_VERSION: u8 = 1;

/// Upper bound on one frame's payload (64 MiB).  Large enough for the
/// pressure field of any workload this daemon serves, small enough that a
/// forged length prefix cannot drive an absurd allocation.
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// How the daemon should wind down when asked to stop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireShutdownMode {
    /// Refuse new work, finish everything already queued.
    Drain,
    /// Refuse new work and cancel queued/running jobs at the next
    /// iteration boundary.
    Abort,
}

/// One protocol message.  Client→server frames: `Hello`, `Submit`, `Cancel`,
/// `Ping`, `Shutdown`, `Goodbye`.  Server→client frames: `Welcome`,
/// `Accepted`, `Busy`, `Rejected`, `Event`, `Done`, `Stopped`, `JobFailed`,
/// `Pong`, `ShuttingDown`.
#[derive(Debug)]
pub enum Frame {
    /// Client introduction; `client` is a free-form display name.
    Hello {
        /// Display name the client announces.
        client: String,
    },
    /// Server response to `Hello`: the session id assigned to this
    /// connection and the daemon's banner.
    Welcome {
        /// Session id (unique per connection for the daemon's lifetime).
        session: u64,
        /// Human-readable daemon banner.
        banner: String,
    },
    /// Submit one solve job.
    Submit {
        /// Client-chosen correlation id, echoed in every reply about this job.
        job_id: u64,
        /// The job itself (boxed: a spec dwarfs every other variant).
        spec: Box<WireJobSpec>,
    },
    /// The job was admitted to the engine queue.
    Accepted {
        /// Echo of the `Submit` correlation id.
        job_id: u64,
    },
    /// Typed back-pressure: the session's admission window is full.  The
    /// client may resubmit once an outstanding job finishes.
    Busy {
        /// Echo of the `Submit` correlation id.
        job_id: u64,
        /// Queue depth observed at rejection time.
        depth: usize,
        /// Queue capacity.
        capacity: usize,
    },
    /// The job was refused outright (invalid spec, daemon shutting down).
    Rejected {
        /// Echo of the `Submit` correlation id.
        job_id: u64,
        /// Human-readable reason.
        reason: String,
    },
    /// Cancel one in-flight job; takes effect at the next iteration
    /// boundary of that solve only.
    Cancel {
        /// The job to cancel.
        job_id: u64,
    },
    /// One streamed solve event.  `seq` increases by one per event within a
    /// job, so the client can assert it missed nothing.
    Event {
        /// The job this event belongs to.
        job_id: u64,
        /// Per-job event sequence number, starting at 0.
        seq: u64,
        /// The event, bitwise as the solver emitted it.
        event: SolveEvent,
    },
    /// Terminal: the solve converged; full report attached.
    Done {
        /// The finished job.
        job_id: u64,
        /// The complete report, pressure field included.
        report: Box<SolveReport>,
    },
    /// Terminal: the solve stopped early (cancelled, deadline, budget, …).
    Stopped {
        /// The stopped job.
        job_id: u64,
        /// Why it stopped.
        reason: StopReason,
        /// Partial report when the solver produced one.
        report: Option<Box<SolveReport>>,
    },
    /// Terminal: the solve failed (or panicked) server-side.
    JobFailed {
        /// The failed job.
        job_id: u64,
        /// Error description.
        error: String,
    },
    /// Liveness probe.
    Ping {
        /// Opaque token echoed back in `Pong`.
        token: u64,
    },
    /// Liveness reply.
    Pong {
        /// Echo of the `Ping` token.
        token: u64,
    },
    /// Ask the daemon to wind down.
    Shutdown {
        /// Drain or abort.
        mode: WireShutdownMode,
    },
    /// The daemon is winding down; no further `Submit` will be accepted.
    ShuttingDown,
    /// Orderly end of session (either side may send it).
    Goodbye,
}

impl Frame {
    /// The frame-type tag byte.
    pub fn tag(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 0x01,
            Frame::Welcome { .. } => 0x02,
            Frame::Submit { .. } => 0x03,
            Frame::Accepted { .. } => 0x04,
            Frame::Busy { .. } => 0x05,
            Frame::Rejected { .. } => 0x06,
            Frame::Cancel { .. } => 0x07,
            Frame::Event { .. } => 0x08,
            Frame::Done { .. } => 0x09,
            Frame::Stopped { .. } => 0x0A,
            Frame::JobFailed { .. } => 0x0B,
            Frame::Ping { .. } => 0x0C,
            Frame::Pong { .. } => 0x0D,
            Frame::Shutdown { .. } => 0x0E,
            Frame::ShuttingDown => 0x0F,
            Frame::Goodbye => 0x10,
        }
    }

    /// Short frame name for traces and errors.
    pub fn name(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "Hello",
            Frame::Welcome { .. } => "Welcome",
            Frame::Submit { .. } => "Submit",
            Frame::Accepted { .. } => "Accepted",
            Frame::Busy { .. } => "Busy",
            Frame::Rejected { .. } => "Rejected",
            Frame::Cancel { .. } => "Cancel",
            Frame::Event { .. } => "Event",
            Frame::Done { .. } => "Done",
            Frame::Stopped { .. } => "Stopped",
            Frame::JobFailed { .. } => "JobFailed",
            Frame::Ping { .. } => "Ping",
            Frame::Pong { .. } => "Pong",
            Frame::Shutdown { .. } => "Shutdown",
            Frame::ShuttingDown => "ShuttingDown",
            Frame::Goodbye => "Goodbye",
        }
    }

    fn encode_body(&self, w: &mut ByteWriter) {
        match self {
            Frame::Hello { client } => w.put_str(client),
            Frame::Welcome { session, banner } => {
                w.put_u64(*session);
                w.put_str(banner);
            }
            Frame::Submit { job_id, spec } => {
                w.put_u64(*job_id);
                spec.encode(w);
            }
            Frame::Accepted { job_id } => w.put_u64(*job_id),
            Frame::Busy {
                job_id,
                depth,
                capacity,
            } => {
                w.put_u64(*job_id);
                w.put_usize(*depth);
                w.put_usize(*capacity);
            }
            Frame::Rejected { job_id, reason } => {
                w.put_u64(*job_id);
                w.put_str(reason);
            }
            Frame::Cancel { job_id } => w.put_u64(*job_id),
            Frame::Event { job_id, seq, event } => {
                w.put_u64(*job_id);
                w.put_u64(*seq);
                event.encode(w);
            }
            Frame::Done { job_id, report } => {
                w.put_u64(*job_id);
                report.encode(w);
            }
            Frame::Stopped {
                job_id,
                reason,
                report,
            } => {
                w.put_u64(*job_id);
                reason.encode(w);
                match report {
                    Some(report) => {
                        w.put_bool(true);
                        report.encode(w);
                    }
                    None => w.put_bool(false),
                }
            }
            Frame::JobFailed { job_id, error } => {
                w.put_u64(*job_id);
                w.put_str(error);
            }
            Frame::Ping { token } => w.put_u64(*token),
            Frame::Pong { token } => w.put_u64(*token),
            Frame::Shutdown { mode } => w.put_u8(match mode {
                WireShutdownMode::Drain => 0,
                WireShutdownMode::Abort => 1,
            }),
            Frame::ShuttingDown => {}
            Frame::Goodbye => {}
        }
    }

    fn decode_body(tag: u8, r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(match tag {
            0x01 => Frame::Hello { client: r.str()? },
            0x02 => Frame::Welcome {
                session: r.u64()?,
                banner: r.str()?,
            },
            0x03 => Frame::Submit {
                job_id: r.u64()?,
                spec: Box::new(WireJobSpec::decode(r)?),
            },
            0x04 => Frame::Accepted { job_id: r.u64()? },
            0x05 => Frame::Busy {
                job_id: r.u64()?,
                depth: r.usize()?,
                capacity: r.usize()?,
            },
            0x06 => Frame::Rejected {
                job_id: r.u64()?,
                reason: r.str()?,
            },
            0x07 => Frame::Cancel { job_id: r.u64()? },
            0x08 => Frame::Event {
                job_id: r.u64()?,
                seq: r.u64()?,
                event: SolveEvent::decode(r)?,
            },
            0x09 => Frame::Done {
                job_id: r.u64()?,
                report: Box::new(SolveReport::decode(r)?),
            },
            0x0A => Frame::Stopped {
                job_id: r.u64()?,
                reason: StopReason::decode(r)?,
                report: if r.bool()? {
                    Some(Box::new(SolveReport::decode(r)?))
                } else {
                    None
                },
            },
            0x0B => Frame::JobFailed {
                job_id: r.u64()?,
                error: r.str()?,
            },
            0x0C => Frame::Ping { token: r.u64()? },
            0x0D => Frame::Pong { token: r.u64()? },
            0x0E => Frame::Shutdown {
                mode: match r.u8()? {
                    0 => WireShutdownMode::Drain,
                    1 => WireShutdownMode::Abort,
                    tag => {
                        return Err(WireError::UnknownTag {
                            context: "WireShutdownMode",
                            tag,
                        })
                    }
                },
            },
            0x0F => Frame::ShuttingDown,
            0x10 => Frame::Goodbye,
            tag => {
                return Err(WireError::UnknownTag {
                    context: "Frame",
                    tag,
                })
            }
        })
    }

    /// Encode to a complete on-wire frame: length prefix + versioned,
    /// checksummed payload.
    pub fn to_wire_bytes(&self) -> Vec<u8> {
        let mut payload = ByteWriter::new();
        payload.put_u8(WIRE_VERSION);
        payload.put_u8(self.tag());
        self.encode_body(&mut payload);
        let payload = payload.into_bytes();
        let checksum = fnv1a32(&payload);
        let mut wire = ByteWriter::new();
        wire.put_u32((payload.len() + 4) as u32);
        let mut bytes = wire.into_bytes();
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&checksum.to_be_bytes());
        bytes
    }

    /// Decode one frame from a length-stripped payload (version byte through
    /// checksum).  Verifies version, checksum and full consumption.
    pub fn from_payload(payload: &[u8]) -> Result<Self, WireError> {
        if payload.len() < 6 {
            // version + tag + checksum is the minimum possible frame
            return Err(WireError::Truncated {
                needed: 6,
                available: payload.len(),
            });
        }
        let (content, checksum_bytes) = payload.split_at(payload.len() - 4);
        let got = u32::from_be_bytes([
            checksum_bytes[0],
            checksum_bytes[1],
            checksum_bytes[2],
            checksum_bytes[3],
        ]);
        let expected = fnv1a32(content);
        if expected != got {
            return Err(WireError::ChecksumMismatch { expected, got });
        }
        let version = content[0];
        if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
            return Err(WireError::BadVersion {
                got: version,
                expected: WIRE_VERSION,
            });
        }
        // The reader carries the sender's version so codecs can skip fields
        // that revision never wrote.
        let mut r = ByteReader::with_version(&content[1..], version);
        let tag = r.u8()?;
        let frame = Frame::decode_body(tag, &mut r)?;
        r.finish()?;
        Ok(frame)
    }

    /// Decode one frame from complete wire bytes (length prefix included).
    pub fn from_wire_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        if bytes.len() < 4 {
            return Err(WireError::Truncated {
                needed: 4,
                available: bytes.len(),
            });
        }
        let len = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(WireError::Oversized {
                len,
                max: MAX_FRAME_LEN,
            });
        }
        let rest = &bytes[4..];
        if rest.len() < len {
            return Err(WireError::Truncated {
                needed: len,
                available: rest.len(),
            });
        }
        if rest.len() > len {
            return Err(WireError::TrailingBytes {
                remaining: rest.len() - len,
            });
        }
        Frame::from_payload(rest)
    }

    /// Write this frame to a stream (one `write_all` of the whole frame).
    pub fn write_to<W: Write>(&self, writer: &mut W) -> Result<(), WireError> {
        let bytes = self.to_wire_bytes();
        writer.write_all(&bytes)?;
        writer.flush()?;
        Ok(())
    }

    /// Read exactly one frame from a stream.  Returns `Ok(None)` on a clean
    /// EOF at a frame boundary; EOF mid-frame is [`WireError::Truncated`].
    pub fn read_from<R: Read>(reader: &mut R) -> Result<Option<Self>, WireError> {
        let mut len_bytes = [0u8; 4];
        match read_exact_or_eof(reader, &mut len_bytes)? {
            ReadOutcome::Eof => return Ok(None),
            ReadOutcome::Filled => {}
        }
        let len = u32::from_be_bytes(len_bytes) as usize;
        if len > MAX_FRAME_LEN {
            return Err(WireError::Oversized {
                len,
                max: MAX_FRAME_LEN,
            });
        }
        let mut payload = vec![0u8; len];
        reader.read_exact(&mut payload).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                WireError::Truncated {
                    needed: len,
                    available: 0,
                }
            } else {
                WireError::Io(e.to_string())
            }
        })?;
        Frame::from_payload(&payload).map(Some)
    }
}

enum ReadOutcome {
    Filled,
    Eof,
}

/// `read_exact`, except a clean EOF before the first byte is `Eof` rather
/// than an error (EOF after at least one byte is still truncation).
fn read_exact_or_eof<R: Read>(reader: &mut R, buf: &mut [u8]) -> Result<ReadOutcome, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(ReadOutcome::Eof),
            Ok(0) => {
                return Err(WireError::Truncated {
                    needed: buf.len(),
                    available: filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e.to_string())),
        }
    }
    Ok(ReadOutcome::Filled)
}

/// FNV-1a 32-bit hash — the frame checksum.  Not cryptographic; it guards
/// against truncation, bit rot and desynchronised framing, which is the
/// protocol's threat model on a trusted link.
pub fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811C_9DC5;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Helper for tests and clients: the wire bytes of an arbitrary encodable
/// value wrapped in nothing (no frame) — useful for golden assertions.
pub fn value_bytes<T: WireEncode>(value: &T) -> Vec<u8> {
    to_bytes(value)
}

/// Inverse of [`value_bytes`].
pub fn value_from_bytes<T: WireDecode>(bytes: &[u8]) -> Result<T, WireError> {
    from_bytes(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::BackendSel;
    use mffv_mesh::WorkloadSpec;

    #[test]
    fn frames_roundtrip_through_wire_bytes() {
        let frames = [
            Frame::Hello {
                client: "cli".into(),
            },
            Frame::Welcome {
                session: 3,
                banner: "mffv-serve".into(),
            },
            Frame::Submit {
                job_id: 42,
                spec: Box::new(WireJobSpec::new(
                    WorkloadSpec::quickstart(),
                    BackendSel::HostF64,
                )),
            },
            Frame::Busy {
                job_id: 42,
                depth: 8,
                capacity: 8,
            },
            Frame::Stopped {
                job_id: 42,
                reason: StopReason::Cancelled,
                report: None,
            },
            Frame::Shutdown {
                mode: WireShutdownMode::Abort,
            },
            Frame::Goodbye,
        ];
        for frame in frames {
            let bytes = frame.to_wire_bytes();
            let decoded = Frame::from_wire_bytes(&bytes)
                .unwrap_or_else(|e| panic!("{} failed to decode: {e}", frame.name()));
            assert_eq!(decoded.tag(), frame.tag());
            assert_eq!(
                decoded.to_wire_bytes(),
                bytes,
                "{} not byte-stable",
                frame.name()
            );
        }
    }

    #[test]
    fn corrupt_and_truncated_frames_are_typed_errors() {
        let bytes = Frame::Ping { token: 9 }.to_wire_bytes();
        // Flip one payload byte → checksum mismatch.
        let mut corrupt = bytes.clone();
        corrupt[6] ^= 0x40;
        assert!(matches!(
            Frame::from_wire_bytes(&corrupt),
            Err(WireError::ChecksumMismatch { .. })
        ));
        // Truncate → typed truncation.
        assert!(matches!(
            Frame::from_wire_bytes(&bytes[..bytes.len() - 3]),
            Err(WireError::Truncated { .. })
        ));
        // Oversized header → rejected before allocation.
        let mut oversized = vec![0xFF, 0xFF, 0xFF, 0xFF];
        oversized.extend_from_slice(&bytes[4..]);
        assert!(matches!(
            Frame::from_wire_bytes(&oversized),
            Err(WireError::Oversized { .. })
        ));
        // Wrong version → BadVersion.
        let mut wrong_version = bytes.clone();
        wrong_version[4] = WIRE_VERSION + 1;
        let payload_len = wrong_version.len() - 8;
        let checksum = fnv1a32(&wrong_version[4..4 + payload_len]);
        let n = wrong_version.len();
        wrong_version[n - 4..].copy_from_slice(&checksum.to_be_bytes());
        assert!(matches!(
            Frame::from_wire_bytes(&wrong_version),
            Err(WireError::BadVersion { .. })
        ));
    }

    #[test]
    fn version_one_submit_frames_still_decode() {
        use crate::wire::WirePolicy;
        use mffv_solver::backend::{Precision, PreconditionerKind};

        // Hand-craft the body a version-1 client would send: identical to
        // today's layout except `SolveConfig` stops before the trailing
        // preconditioner byte (which version 2 introduced).
        let mut body = ByteWriter::new();
        body.put_u64(42); // job_id
        WorkloadSpec::quickstart().encode(&mut body);
        BackendSel::HostF64.encode(&mut body);
        body.put_bool(false); // tolerance: None
        body.put_bool(false); // max_iterations: None
        Precision::F64.encode(&mut body);
        body.put_bool(false); // threads: None
        body.put_bool(false); // seed: None
        WirePolicy::default().encode(&mut body);
        body.put_bool(false); // transient: None
        let body = body.into_bytes();

        let mut payload = vec![1u8, 0x03]; // version 1, Submit tag
        payload.extend_from_slice(&body);
        let checksum = fnv1a32(&payload);
        payload.extend_from_slice(&checksum.to_be_bytes());
        let mut bytes = (payload.len() as u32).to_be_bytes().to_vec();
        bytes.extend_from_slice(&payload);

        let decoded = Frame::from_wire_bytes(&bytes).expect("v1 frame must decode");
        match decoded {
            Frame::Submit { job_id, spec } => {
                assert_eq!(job_id, 42);
                assert_eq!(spec.config.preconditioner, PreconditionerKind::None);
                assert_eq!(spec.workload, WorkloadSpec::quickstart());
            }
            other => panic!("expected Submit, got {}", other.name()),
        }
    }

    #[test]
    fn stream_read_sees_clean_eof_and_mid_frame_truncation() {
        let bytes = Frame::Pong { token: 1 }.to_wire_bytes();
        let mut cursor = std::io::Cursor::new(bytes.clone());
        assert!(Frame::read_from(&mut cursor).unwrap().is_some());
        assert!(
            Frame::read_from(&mut cursor).unwrap().is_none(),
            "clean EOF"
        );
        let mut partial = std::io::Cursor::new(bytes[..bytes.len() - 1].to_vec());
        assert!(matches!(
            Frame::read_from(&mut partial),
            Err(WireError::Truncated { .. })
        ));
    }
}
