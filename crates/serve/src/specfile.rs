//! The `.mffv` job spec file format `mffv-cli` submits.
//!
//! A deliberately small line format — `key = value`, `#` comments, one
//! optional `[transient]` section — so specs are diffable and writable by
//! hand.  Unset keys inherit the `quickstart` workload's defaults.
//!
//! ```text
//! # steady pressure solve on the roofline GPU model
//! name            = demo
//! dims            = 16 16 8
//! spacing         = 10 10 5
//! backend         = gpu-ref
//! permeability    = lognormal -29.9 0.5 42
//! boundary        = source-producer 2e7 1e7
//! tolerance       = 1e-10
//! max_iterations  = 4000
//! preconditioner  = mg
//! iteration_budget = 2000
//!
//! [transient]
//! total_time            = 30
//! dt                    = ramp 0.5 1.5 4
//! total_compressibility = 1e-9
//! well = inj  rate 2 3 1 0.25
//! well = prod bhp 12 12 2 1e6 1e-9
//! ```

use crate::wire::{BackendSel, WireJobSpec, WirePolicy};
use mffv_mesh::workload::BoundarySpec;
use mffv_mesh::{
    CellIndex, Dims, DtPolicy, PermeabilityModel, TransientSpec, Well, WellControl, WellSet,
    WorkloadSpec,
};
use mffv_solver::backend::{Precision, PreconditionerKind};

/// A parse failure, with the offending line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "spec line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SpecError {}

fn err(line: usize, message: impl Into<String>) -> SpecError {
    SpecError {
        line,
        message: message.into(),
    }
}

fn parse_f64(line: usize, token: &str, what: &str) -> Result<f64, SpecError> {
    token
        .parse::<f64>()
        .map_err(|_| err(line, format!("{what}: `{token}` is not a number")))
}

fn parse_usize(line: usize, token: &str, what: &str) -> Result<usize, SpecError> {
    token.parse::<usize>().map_err(|_| {
        err(
            line,
            format!("{what}: `{token}` is not a non-negative integer"),
        )
    })
}

fn parse_u64(line: usize, token: &str, what: &str) -> Result<u64, SpecError> {
    token.parse::<u64>().map_err(|_| {
        err(
            line,
            format!("{what}: `{token}` is not a non-negative integer"),
        )
    })
}

fn three<'a>(line: usize, value: &'a str, what: &str) -> Result<[&'a str; 3], SpecError> {
    let parts: Vec<&str> = value.split_whitespace().collect();
    match parts.as_slice() {
        [a, b, c] => Ok([a, b, c]),
        _ => Err(err(line, format!("{what} needs exactly three values"))),
    }
}

/// Parse a complete spec file into the wire job it describes.
pub fn parse_spec(text: &str) -> Result<WireJobSpec, SpecError> {
    let mut workload = WorkloadSpec::quickstart();
    let mut backend = BackendSel::HostF64;
    let mut job = WireJobSpec::new(workload.clone(), backend);
    let mut policy = WirePolicy::default();
    let mut in_transient = false;
    // Transient accumulator: only materialised when the section appears.
    let mut total_time: Option<f64> = None;
    let mut dt: Option<DtPolicy> = None;
    let mut compressibility: Option<f64> = None;
    let mut initial_pressure: Option<f64> = None;
    let mut snapshot_times: Vec<f64> = Vec::new();
    let mut warm_start = true;
    let mut wells: Vec<Well> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        if content == "[transient]" {
            in_transient = true;
            continue;
        }
        if content.starts_with('[') {
            return Err(err(line, format!("unknown section `{content}`")));
        }
        let (key, value) = content
            .split_once('=')
            .ok_or_else(|| err(line, "expected `key = value`"))?;
        let (key, value) = (key.trim(), value.trim());
        if in_transient {
            match key {
                "total_time" => total_time = Some(parse_f64(line, value, "total_time")?),
                "dt" => {
                    let parts: Vec<&str> = value.split_whitespace().collect();
                    dt = Some(match parts.as_slice() {
                        ["fixed", step] => DtPolicy::Fixed {
                            dt: parse_f64(line, step, "dt")?,
                        },
                        [step] => DtPolicy::Fixed {
                            dt: parse_f64(line, step, "dt")?,
                        },
                        ["ramp", initial, growth, max] => DtPolicy::Ramp {
                            initial: parse_f64(line, initial, "dt initial")?,
                            growth: parse_f64(line, growth, "dt growth")?,
                            max: parse_f64(line, max, "dt max")?,
                        },
                        _ => {
                            return Err(err(
                                line,
                                "dt is `fixed <s>` or `ramp <initial> <growth> <max>`",
                            ))
                        }
                    });
                }
                "total_compressibility" => {
                    compressibility = Some(parse_f64(line, value, "total_compressibility")?)
                }
                "initial_pressure" => {
                    initial_pressure = Some(parse_f64(line, value, "initial_pressure")?)
                }
                "snapshot_times" => {
                    snapshot_times = value
                        .split_whitespace()
                        .map(|t| parse_f64(line, t, "snapshot_times"))
                        .collect::<Result<_, _>>()?;
                }
                "warm_start" => {
                    warm_start = match value {
                        "true" => true,
                        "false" => false,
                        _ => return Err(err(line, "warm_start is `true` or `false`")),
                    }
                }
                "well" => {
                    let parts: Vec<&str> = value.split_whitespace().collect();
                    let well = match parts.as_slice() {
                        [name, "rate", x, y, z, rate] => Well::rate(
                            *name,
                            CellIndex::new(
                                parse_usize(line, x, "well x")?,
                                parse_usize(line, y, "well y")?,
                                parse_usize(line, z, "well z")?,
                            ),
                            parse_f64(line, rate, "well rate")?,
                        ),
                        [name, "bhp", x, y, z, pressure, pi] => Well {
                            name: (*name).to_string(),
                            cell: CellIndex::new(
                                parse_usize(line, x, "well x")?,
                                parse_usize(line, y, "well y")?,
                                parse_usize(line, z, "well z")?,
                            ),
                            control: WellControl::Bhp {
                                pressure: parse_f64(line, pressure, "well pressure")?,
                                productivity_index: parse_f64(line, pi, "well PI")?,
                            },
                            start_time: 0.0,
                            end_time: f64::INFINITY,
                        },
                        _ => {
                            return Err(err(
                                line,
                                "well is `<name> rate <x> <y> <z> <rate>` or `<name> bhp <x> <y> <z> <pressure> <PI>`",
                            ))
                        }
                    };
                    wells.push(well);
                }
                other => return Err(err(line, format!("unknown [transient] key `{other}`"))),
            }
            continue;
        }
        match key {
            "name" => workload.name = value.to_string(),
            "dims" => {
                let [a, b, c] = three(line, value, "dims")?;
                workload.dims = Dims::new(
                    parse_usize(line, a, "dims")?,
                    parse_usize(line, b, "dims")?,
                    parse_usize(line, c, "dims")?,
                );
            }
            "spacing" => {
                let [a, b, c] = three(line, value, "spacing")?;
                workload.spacing = [
                    parse_f64(line, a, "spacing")?,
                    parse_f64(line, b, "spacing")?,
                    parse_f64(line, c, "spacing")?,
                ];
            }
            "backend" => {
                backend = BackendSel::parse(value).map_err(|e| err(line, e.to_string()))?
            }
            "viscosity" => workload.viscosity = parse_f64(line, value, "viscosity")?,
            "tolerance" => workload.tolerance = parse_f64(line, value, "tolerance")?,
            "max_iterations" => {
                workload.max_iterations = parse_usize(line, value, "max_iterations")?
            }
            "permeability" => {
                let parts: Vec<&str> = value.split_whitespace().collect();
                workload.permeability = match parts.as_slice() {
                    ["homogeneous", v] => PermeabilityModel::Homogeneous {
                        value: parse_f64(line, v, "permeability")?,
                    },
                    ["layered", rest @ ..] if !rest.is_empty() => PermeabilityModel::Layered {
                        layer_values: rest
                            .iter()
                            .map(|v| parse_f64(line, v, "layer value"))
                            .collect::<Result<_, _>>()?,
                    },
                    ["lognormal", mean, std, seed] => PermeabilityModel::LogNormal {
                        mean_log: parse_f64(line, mean, "mean_log")?,
                        std_log: parse_f64(line, std, "std_log")?,
                        seed: parse_u64(line, seed, "seed")?,
                    },
                    ["channelized", bg, ch, n, hw, amp, seed] => PermeabilityModel::Channelized {
                        background: parse_f64(line, bg, "background")?,
                        channel: parse_f64(line, ch, "channel")?,
                        num_channels: parse_usize(line, n, "num_channels")?,
                        half_width: parse_f64(line, hw, "half_width")?,
                        amplitude: parse_f64(line, amp, "amplitude")?,
                        seed: parse_u64(line, seed, "seed")?,
                    },
                    _ => {
                        return Err(err(
                            line,
                            "permeability is `homogeneous <v>`, `layered <v>…`, \
                             `lognormal <mean> <std> <seed>` or \
                             `channelized <bg> <ch> <n> <hw> <amp> <seed>`",
                        ))
                    }
                };
            }
            "boundary" => {
                let parts: Vec<&str> = value.split_whitespace().collect();
                workload.boundary = match parts.as_slice() {
                    ["source-producer", s, p] => BoundarySpec::SourceProducer {
                        source_pressure: parse_f64(line, s, "source_pressure")?,
                        producer_pressure: parse_f64(line, p, "producer_pressure")?,
                    },
                    ["xfaces", l, r] => BoundarySpec::XFaces {
                        left_pressure: parse_f64(line, l, "left_pressure")?,
                        right_pressure: parse_f64(line, r, "right_pressure")?,
                    },
                    ["none"] => BoundarySpec::None,
                    _ => return Err(err(
                        line,
                        "boundary is `source-producer <src> <prod>`, `xfaces <l> <r>` or `none`",
                    )),
                };
            }
            "seed" => job.seed = Some(parse_u64(line, value, "seed")?),
            "precision" => {
                job.config.precision = match value {
                    "f32" => Precision::F32,
                    "f64" => Precision::F64,
                    _ => return Err(err(line, "precision is `f32` or `f64`")),
                }
            }
            "threads" => job.config.threads = Some(parse_usize(line, value, "threads")?),
            "preconditioner" => {
                job.config.preconditioner = PreconditionerKind::parse(value)
                    .ok_or_else(|| err(line, "preconditioner is `jacobi`, `mg` or `none`"))?
            }
            "iteration_budget" => {
                policy.iteration_budget = Some(parse_usize(line, value, "iteration_budget")?)
            }
            "deadline_seconds" => {
                policy.deadline_seconds = Some(parse_f64(line, value, "deadline_seconds")?)
            }
            "stagnation" => {
                let parts: Vec<&str> = value.split_whitespace().collect();
                policy.stagnation = match parts.as_slice() {
                    [window, min_rel] => Some((
                        parse_usize(line, window, "stagnation window")?,
                        parse_f64(line, min_rel, "stagnation min improvement")?,
                    )),
                    _ => return Err(err(line, "stagnation is `<window> <min_rel_improvement>`")),
                };
            }
            "divergence" => policy.divergence_factor = Some(parse_f64(line, value, "divergence")?),
            other => return Err(err(line, format!("unknown key `{other}`"))),
        }
    }

    if in_transient {
        let total_time =
            total_time.ok_or_else(|| err(0, "[transient] section needs `total_time`"))?;
        let compressibility = compressibility
            .ok_or_else(|| err(0, "[transient] section needs `total_compressibility`"))?;
        let mut spec = TransientSpec::new(total_time, 1.0, compressibility);
        if let Some(dt) = dt {
            spec.dt = dt;
        }
        spec = spec.with_wells(WellSet::new(wells));
        if let Some(pressure) = initial_pressure {
            spec = spec.with_initial_pressure(pressure);
        }
        spec.snapshot_times = snapshot_times;
        spec.warm_start = warm_start;
        job.transient = Some(spec);
    }

    job.workload = workload;
    job.backend = backend;
    job.policy = policy;
    Ok(job)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_full_spec_parses_into_the_expected_job() {
        let text = r#"
# demo spec
name           = demo
dims           = 8 8 4
spacing        = 10 10 5
backend        = gpu-ref-h100
permeability   = lognormal -29.9 0.5 42
boundary       = xfaces 2e7 1e7
tolerance      = 1e-9
max_iterations = 900
seed           = 7
precision      = f32
preconditioner = mg
iteration_budget = 500
stagnation     = 25 1e-3

[transient]
total_time            = 30
dt                    = ramp 0.5 1.5 4
total_compressibility = 1e-9
initial_pressure      = 1.5e7
snapshot_times        = 10 20
warm_start            = false
well = inj  rate 2 3 1 0.25
well = prod bhp 6 6 2 1e6 1e-9
"#;
        let job = parse_spec(text).expect("parses");
        assert_eq!(job.workload.name, "demo");
        assert_eq!(job.workload.dims, Dims::new(8, 8, 4));
        assert_eq!(job.backend, BackendSel::GpuRefH100);
        assert_eq!(job.seed, Some(7));
        assert_eq!(job.config.precision, Precision::F32);
        assert_eq!(job.config.preconditioner, PreconditionerKind::Mg);
        assert_eq!(job.policy.iteration_budget, Some(500));
        assert_eq!(job.policy.stagnation, Some((25, 1e-3)));
        let transient = job.transient.expect("transient section");
        assert_eq!(transient.wells.wells().len(), 2);
        assert!(!transient.warm_start);
        assert_eq!(transient.snapshot_times, vec![10.0, 20.0]);
        assert!(matches!(transient.dt, DtPolicy::Ramp { .. }));
    }

    #[test]
    fn errors_carry_the_line_number() {
        let bad = "dims = 8 8\n";
        let e = parse_spec(bad).unwrap_err();
        assert_eq!(e.line, 1);
        let bad = "name = x\nbackend = quantum\n";
        let e = parse_spec(bad).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("quantum"));
        let bad = "name = x\npreconditioner = ilu\n";
        let e = parse_spec(bad).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("`jacobi`, `mg` or `none`"));
    }

    #[test]
    fn steady_specs_need_no_transient_section() {
        let job = parse_spec("backend = host-f32\n").expect("parses");
        assert!(job.transient.is_none());
        assert_eq!(job.backend, BackendSel::HostF32);
    }
}
