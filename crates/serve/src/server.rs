//! The solve daemon: a TCP server over `std::net` that accepts framed jobs,
//! streams live convergence events back per session, and drains cleanly.
//!
//! ## Thread structure
//!
//! ```text
//!  accept loop ──▶ reader thread per connection ──▶ per-session pending deque
//!                     (decodes frames, replies          │
//!                      Accepted/Busy/Rejected)          ▼ round-robin
//!                                              dispatcher thread
//!                                                       │ submit_blocking
//!                                                       ▼ (fairness throttle)
//!                                              EngineService workers
//!                                                       │ on_event / on_done
//!                                                       ▼
//!                                              session writer (Mutex<TcpStream>)
//! ```
//!
//! * **Admission is per session.**  Each connection may have at most
//!   [`ServeConfig::session_window`] jobs outstanding; a `Submit` beyond the
//!   window gets a typed `Busy` frame immediately — back-pressure is a
//!   protocol reply, never a hang.
//! * **Fairness is structural.**  Accepted jobs wait in per-session deques; a
//!   single dispatcher thread round-robins across sessions and feeds the
//!   engine through `submit_blocking`, deliberately riding the bounded
//!   queue's back-pressure.  With the engine queue full, every session still
//!   advances one job per turn of the cursor — no session can starve another.
//! * **Cancellation is a token trip.**  Every accepted job gets its own
//!   [`CancelToken`] (tripped by a `Cancel` frame for that `job_id`) plus the
//!   session's disconnect token (tripped when the connection drops, so
//!   orphaned solves stop instead of burning workers).  Both act at the next
//!   iteration boundary of that solve only.
//! * **Shutdown is two-flavoured**, mirroring
//!   [`mffv_engine::ShutdownMode`]: `Drain` finishes every
//!   accepted job (terminal frames included) before the daemon exits; `Abort`
//!   trips the service-wide token so in-flight solves stop at their next
//!   boundary and still-pending jobs come back as `Rejected`.

use crate::frame::{Frame, WireShutdownMode};
use crate::wire::WireError;
use mffv_engine::{Engine, EngineService, JobStatus, ServiceJob, ShutdownMode};
use mffv_solver::monitor::{CancelToken, Flow, SolveEvent};
use mffv_telemetry::{MetricsRegistry, Tracer};
use std::collections::{BTreeMap, VecDeque};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// Lock a mutex, recovering the guard from a poisoned lock: the daemon's
/// shared maps stay usable even if some thread panicked mid-update.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Engine worker threads.
    pub workers: usize,
    /// Engine queue bound (jobs admitted past the dispatcher).
    pub queue_capacity: usize,
    /// Jobs one session may have outstanding before `Submit` gets `Busy`.
    pub session_window: usize,
    /// Per-session deadline ceiling in seconds; clamps (and, when the client
    /// asked for none, imposes) every job's deadline.  `None` = no ceiling.
    pub max_session_seconds: Option<f64>,
    /// Banner returned in `Welcome`.
    pub banner: String,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 4,
            session_window: 2,
            max_session_seconds: None,
            banner: "mffv-serve".to_string(),
        }
    }
}

impl ServeConfig {
    /// Defaults with an explicit bind address.
    pub fn on(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            ..Self::default()
        }
    }

    /// Set the engine worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Set the engine queue bound.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Set the per-session admission window.
    pub fn with_session_window(mut self, window: usize) -> Self {
        self.session_window = window.max(1);
        self
    }

    /// Set the per-session deadline ceiling.
    pub fn with_max_session_seconds(mut self, seconds: f64) -> Self {
        self.max_session_seconds = Some(seconds);
        self
    }
}

/// One connected client.
struct Session {
    id: u64,
    /// Writer half; every outbound frame is one locked `write_all`, so
    /// frames from the reader, the streaming callback and the terminal
    /// callback interleave whole, never interleaved byte-wise.
    writer: Mutex<TcpStream>,
    /// Per-job cancel tokens for this session's in-flight jobs.
    jobs: Mutex<BTreeMap<u64, CancelToken>>,
    /// Jobs accepted and not yet terminal (admission window occupancy).
    in_flight: AtomicUsize,
    /// Tripped when the connection drops: orphaned solves stop at their
    /// next iteration boundary instead of running to convergence unread.
    disconnect: CancelToken,
}

impl Session {
    /// Send one frame; errors are surfaced, not panicked (a vanished client
    /// is an expected event, handled by the disconnect token).
    fn send(&self, frame: &Frame) -> Result<(), WireError> {
        let mut writer = lock(&self.writer);
        frame.write_to(&mut *writer)
    }
}

/// A job admitted to a session window, waiting for the dispatcher.
struct PendingJob {
    session: Arc<Session>,
    job_id: u64,
    service_job: ServiceJob,
}

struct DispatchState {
    /// Per-session FIFO of admitted jobs, keyed by session id (BTreeMap so
    /// the round-robin cursor has a stable total order to walk).
    pending: BTreeMap<u64, VecDeque<PendingJob>>,
    /// Set once at shutdown; `Drain` lets the dispatcher empty `pending`
    /// into the engine first, `Abort` rejects whatever is still here.
    stop: Option<WireShutdownMode>,
}

struct ServerShared {
    config: ServeConfig,
    tracer: Tracer,
    metrics: Option<MetricsRegistry>,
    /// Once true, new connections and new `Submit`s are refused.
    shutting: AtomicBool,
    sessions: Mutex<BTreeMap<u64, Arc<Session>>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
    next_session: AtomicU64,
    dispatch: Mutex<DispatchState>,
    dispatch_cv: Condvar,
    /// A client asked the daemon to stop (`Shutdown` frame); the embedding
    /// process observes it via [`RunningServer::wait_for_shutdown_request`].
    shutdown_request: Mutex<Option<WireShutdownMode>>,
    shutdown_cv: Condvar,
}

impl ServerShared {
    fn count(&self, name: &str) {
        if let Some(metrics) = &self.metrics {
            metrics.inc(name);
        }
    }
}

/// Builder for a [`RunningServer`].
pub struct Server {
    config: ServeConfig,
    tracer: Tracer,
    metrics: Option<MetricsRegistry>,
}

impl Server {
    /// A server with the given configuration (tracing disabled).
    pub fn new(config: ServeConfig) -> Self {
        Self {
            config,
            tracer: Tracer::disabled(),
            metrics: None,
        }
    }

    /// Attach a span tracer (shared with the engine it starts).
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Attach a metrics registry (shared with the engine it starts).
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Bind the listener, start the engine service, the dispatcher and the
    /// accept loop, and return the running daemon's handle.
    pub fn bind(self) -> Result<RunningServer, WireError> {
        let listener = TcpListener::bind(&self.config.addr)?;
        let local_addr = listener.local_addr()?;
        let mut engine = Engine::new(self.config.workers)
            .with_queue_capacity(self.config.queue_capacity)
            .with_tracer(self.tracer.clone());
        if let Some(metrics) = &self.metrics {
            engine = engine.with_metrics(metrics.clone());
        }
        let service = engine.start();
        let abort_token = service.cancel_token();
        let shared = Arc::new(ServerShared {
            config: self.config,
            tracer: self.tracer,
            metrics: self.metrics,
            shutting: AtomicBool::new(false),
            sessions: Mutex::new(BTreeMap::new()),
            readers: Mutex::new(Vec::new()),
            next_session: AtomicU64::new(1),
            dispatch: Mutex::new(DispatchState {
                pending: BTreeMap::new(),
                stop: None,
            }),
            dispatch_cv: Condvar::new(),
            shutdown_request: Mutex::new(None),
            shutdown_cv: Condvar::new(),
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || dispatcher_loop(&shared, service))
        };
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, &listener))
        };
        Ok(RunningServer {
            shared,
            abort_token,
            accept,
            dispatcher,
            local_addr,
        })
    }
}

/// Handle to a live daemon.
pub struct RunningServer {
    shared: Arc<ServerShared>,
    /// The engine service's own cancel token, tripped *before* the
    /// dispatcher is signalled on `Abort` so a dispatcher blocked on a full
    /// queue is unblocked by the cancelling solves, never deadlocked.
    abort_token: CancelToken,
    accept: JoinHandle<()>,
    dispatcher: JoinHandle<()>,
    local_addr: SocketAddr,
}

impl RunningServer {
    /// The bound address (resolves the ephemeral port of `…:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Block until some client sends a `Shutdown` frame; returns the
    /// requested mode.  The embedding process then calls
    /// [`shutdown`](Self::shutdown).
    pub fn wait_for_shutdown_request(&self) -> WireShutdownMode {
        let mut request = lock(&self.shared.shutdown_request);
        loop {
            if let Some(mode) = *request {
                return mode;
            }
            request = self
                .shared
                .shutdown_cv
                .wait(request)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Whether a client has requested shutdown (non-blocking probe).
    pub fn shutdown_requested(&self) -> Option<WireShutdownMode> {
        *lock(&self.shared.shutdown_request)
    }

    /// Wind the daemon down.  `Drain`: every accepted job runs to its
    /// terminal frame first.  `Abort`: in-flight solves are cancelled at
    /// their next iteration boundary, still-pending jobs come back as
    /// `Rejected`.  Joins every daemon thread before returning.
    pub fn shutdown(self, mode: WireShutdownMode) {
        self.shared.shutting.store(true, Ordering::SeqCst);
        if matches!(mode, WireShutdownMode::Abort) {
            self.abort_token.cancel();
        }
        // Wake the accept loop out of its blocking accept() with a throwaway
        // connection to ourselves; it re-checks the flag and exits.
        let _ = TcpStream::connect(self.local_addr);
        let _ = self.accept.join();
        {
            let mut state = lock(&self.shared.dispatch);
            state.stop = Some(mode);
            self.shared.dispatch_cv.notify_all();
        }
        // The dispatcher drains (or rejects) its pending deques, shuts the
        // engine service down in the matching mode and exits; when this join
        // returns, every accepted job has sent its terminal frame.
        let _ = self.dispatcher.join();
        let sessions: Vec<Arc<Session>> = lock(&self.shared.sessions).values().cloned().collect();
        for session in sessions {
            let _ = session.send(&Frame::ShuttingDown);
            let _ = session.send(&Frame::Goodbye);
            let _ = lock(&session.writer).shutdown(Shutdown::Both);
        }
        let readers: Vec<JoinHandle<()>> = lock(&self.shared.readers).drain(..).collect();
        for reader in readers {
            let _ = reader.join();
        }
    }
}

fn accept_loop(shared: &Arc<ServerShared>, listener: &TcpListener) {
    for connection in listener.incoming() {
        if shared.shutting.load(Ordering::SeqCst) {
            break;
        }
        let stream = match connection {
            Ok(stream) => stream,
            Err(_) => continue,
        };
        let span = shared.tracer.span("serve.accept");
        shared.count("serve.sessions.opened");
        let writer = match stream.try_clone() {
            Ok(writer) => writer,
            Err(_) => {
                span.finish();
                continue;
            }
        };
        let id = shared.next_session.fetch_add(1, Ordering::SeqCst);
        let session = Arc::new(Session {
            id,
            writer: Mutex::new(writer),
            jobs: Mutex::new(BTreeMap::new()),
            in_flight: AtomicUsize::new(0),
            disconnect: CancelToken::new(),
        });
        lock(&shared.sessions).insert(id, Arc::clone(&session));
        let reader = {
            let shared = Arc::clone(shared);
            std::thread::spawn(move || session_reader(&shared, &session, stream))
        };
        lock(&shared.readers).push(reader);
        span.finish();
    }
}

fn session_reader(shared: &Arc<ServerShared>, session: &Arc<Session>, mut stream: TcpStream) {
    let span = shared.tracer.span("serve.session");
    loop {
        match Frame::read_from(&mut stream) {
            Ok(Some(frame)) => {
                let frame_span = span.child("serve.frame");
                shared.count("serve.frames.received");
                let keep_going = handle_frame(shared, session, frame);
                frame_span.finish();
                if !keep_going {
                    break;
                }
            }
            // Clean EOF at a frame boundary: the client hung up.
            Ok(None) => break,
            // Desynchronised or corrupt stream: nothing after this byte can
            // be trusted, so the only safe move is to drop the connection.
            Err(_) => {
                let _ = session.send(&Frame::Goodbye);
                break;
            }
        }
    }
    // Orphan cancellation: whatever this session still has in flight stops
    // at its next iteration boundary rather than solving for nobody.
    session.disconnect.cancel();
    for token in lock(&session.jobs).values() {
        token.cancel();
    }
    lock(&shared.sessions).remove(&session.id);
    shared.count("serve.sessions.closed");
    span.finish();
}

/// Handle one inbound frame; returns `false` when the session should end.
fn handle_frame(shared: &Arc<ServerShared>, session: &Arc<Session>, frame: Frame) -> bool {
    match frame {
        Frame::Hello { client: _ } => {
            let _ = session.send(&Frame::Welcome {
                session: session.id,
                banner: shared.config.banner.clone(),
            });
            true
        }
        Frame::Submit { job_id, spec } => {
            handle_submit(shared, session, job_id, &spec);
            true
        }
        Frame::Cancel { job_id } => {
            shared.count("serve.cancel.requests");
            // Unknown ids are ignored: the job may have finished in the gap
            // between the client deciding to cancel and the frame arriving.
            if let Some(token) = lock(&session.jobs).get(&job_id) {
                token.cancel();
                shared.count("serve.jobs.cancelled");
            }
            true
        }
        Frame::Ping { token } => {
            let _ = session.send(&Frame::Pong { token });
            true
        }
        Frame::Shutdown { mode } => {
            shared.shutting.store(true, Ordering::SeqCst);
            {
                let mut request = lock(&shared.shutdown_request);
                request.get_or_insert(mode);
            }
            shared.shutdown_cv.notify_all();
            let _ = session.send(&Frame::ShuttingDown);
            true
        }
        Frame::Goodbye => {
            let _ = session.send(&Frame::Goodbye);
            false
        }
        // Server→client frames arriving at the server are a protocol error;
        // drop the session (the stream is not trustworthy).
        _ => {
            let _ = session.send(&Frame::Goodbye);
            false
        }
    }
}

fn handle_submit(
    shared: &Arc<ServerShared>,
    session: &Arc<Session>,
    job_id: u64,
    spec: &crate::wire::WireJobSpec,
) {
    if shared.shutting.load(Ordering::SeqCst) {
        shared.count("serve.jobs.rejected");
        let _ = session.send(&Frame::Rejected {
            job_id,
            reason: "daemon is shutting down".to_string(),
        });
        return;
    }
    let mut job_spec = spec.to_job_spec(shared.config.max_session_seconds);
    if let Err(error) = job_spec.validate() {
        shared.count("serve.jobs.rejected");
        let _ = session.send(&Frame::Rejected {
            job_id,
            reason: error.to_string(),
        });
        return;
    }
    // Per-session admission window: typed Busy, never a hang.  The reply
    // reports the window occupancy — that is the bound the client hit.
    let window = shared.config.session_window;
    let occupied = session.in_flight.load(Ordering::SeqCst);
    if occupied >= window {
        shared.count("serve.jobs.busy");
        let _ = session.send(&Frame::Busy {
            job_id,
            depth: occupied,
            capacity: window,
        });
        return;
    }
    // Arm this job's cancel token plus the session's disconnect token; both
    // stop the solve at its next iteration boundary, and neither can touch
    // any other session's jobs.
    let token = CancelToken::new();
    job_spec.stop_policy = job_spec
        .stop_policy
        .clone()
        .cancel_token(token.clone())
        .cancel_token(session.disconnect.clone());
    lock(&session.jobs).insert(job_id, token);
    session.in_flight.fetch_add(1, Ordering::SeqCst);

    let streamer_session = Arc::clone(session);
    let streamer_shared = Arc::clone(shared);
    let mut seq: u64 = 0;
    let done_session = Arc::clone(session);
    let service_job = ServiceJob::new(job_spec, move |outcome| {
        let frame = match outcome.status {
            JobStatus::Completed(report) => Frame::Done {
                job_id,
                report: Box::new(report),
            },
            JobStatus::Stopped { reason, report } => Frame::Stopped {
                job_id,
                reason,
                report: report.map(Box::new),
            },
            JobStatus::Failed(error) => Frame::JobFailed {
                job_id,
                error: error.to_string(),
            },
            JobStatus::Panicked(message) => Frame::JobFailed {
                job_id,
                error: format!("solve panicked: {message}"),
            },
        };
        // Release the window slot before the terminal frame goes out, so a
        // client that has seen Done/Stopped/JobFailed can submit again
        // immediately without racing the decrement into a spurious Busy.
        lock(&done_session.jobs).remove(&job_id);
        done_session.in_flight.fetch_sub(1, Ordering::SeqCst);
        let _ = done_session.send(&frame);
    })
    .with_events(move |event: &SolveEvent| {
        streamer_shared.count("serve.events.streamed");
        // The event is forwarded bitwise (f64 as to_bits); a client
        // recording this stream sees exactly the in-process history.
        let _ = streamer_session.send(&Frame::Event {
            job_id,
            seq,
            event: *event,
        });
        seq += 1;
        Flow::Continue
    });

    // Accepted goes out before the dispatcher can see the job, so the
    // client always observes Accepted before the first Event frame.
    shared.count("serve.jobs.accepted");
    let _ = session.send(&Frame::Accepted { job_id });
    {
        let mut state = lock(&shared.dispatch);
        state
            .pending
            .entry(session.id)
            .or_default()
            .push_back(PendingJob {
                session: Arc::clone(session),
                job_id,
                service_job,
            });
    }
    shared.dispatch_cv.notify_all();
}

/// Round-robin pick: the first session with pending work whose id is
/// strictly greater than the cursor, wrapping to the smallest.  Advances the
/// cursor to the served session, so consecutive picks rotate.
fn take_round_robin(state: &mut DispatchState, cursor: &mut u64) -> Option<PendingJob> {
    let pick = state
        .pending
        .range(cursor.saturating_add(1)..)
        .next()
        .or_else(|| state.pending.range(..).next())
        .map(|(id, _)| *id)?;
    *cursor = pick;
    let mut queue = state.pending.remove(&pick)?;
    let item = queue.pop_front();
    if !queue.is_empty() {
        state.pending.insert(pick, queue);
    }
    item
}

fn dispatcher_loop(shared: &Arc<ServerShared>, service: EngineService) {
    enum Step {
        Submit(Box<PendingJob>),
        RejectAll(Vec<PendingJob>),
        DrainDone,
    }
    let mut cursor: u64 = 0;
    loop {
        let step = {
            let mut state = lock(&shared.dispatch);
            loop {
                if matches!(state.stop, Some(WireShutdownMode::Abort)) {
                    let all: Vec<PendingJob> = std::mem::take(&mut state.pending)
                        .into_values()
                        .flatten()
                        .collect();
                    break Step::RejectAll(all);
                }
                if let Some(item) = take_round_robin(&mut state, &mut cursor) {
                    break Step::Submit(Box::new(item));
                }
                if matches!(state.stop, Some(WireShutdownMode::Drain)) {
                    break Step::DrainDone;
                }
                state = shared
                    .dispatch_cv
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        match step {
            Step::Submit(item) => {
                // Deliberately rides the bounded queue's back-pressure: with
                // the engine full this blocks, and every other session's next
                // job is already ordered behind the cursor — one job per
                // session per turn.
                if let Err(rejected) = service.submit_blocking(item.service_job) {
                    reject_pending(
                        shared,
                        &item.session,
                        item.job_id,
                        &rejected.error.to_string(),
                    );
                }
            }
            Step::RejectAll(all) => {
                for item in all {
                    reject_pending(shared, &item.session, item.job_id, "daemon aborted");
                }
                service.shutdown(ShutdownMode::Abort);
                return;
            }
            Step::DrainDone => {
                service.shutdown(ShutdownMode::Drain);
                return;
            }
        }
    }
}

/// A job refused after admission (shutdown won the race): undo its session
/// accounting and tell the client.
fn reject_pending(shared: &Arc<ServerShared>, session: &Arc<Session>, job_id: u64, reason: &str) {
    shared.count("serve.jobs.rejected");
    let _ = session.send(&Frame::Rejected {
        job_id,
        reason: reason.to_string(),
    });
    lock(&session.jobs).remove(&job_id);
    session.in_flight.fetch_sub(1, Ordering::SeqCst);
}
