//! Blocking client for the solve daemon: connect, submit, stream, cancel.
//!
//! One [`Client`] is one protocol session on one TCP connection.  The client
//! is synchronous by design — `mffv-cli` and the test harness drive one job
//! at a time, reading the event stream as it arrives and (optionally)
//! sending a mid-flight `Cancel` between frames.

use crate::frame::{Frame, WireShutdownMode};
use crate::wire::{WireError, WireJobSpec};
use mffv_solver::backend::SolveReport;
use mffv_solver::monitor::{SolveEvent, StopReason};
use std::net::{TcpStream, ToSocketAddrs};

/// What the event callback wants done next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientControl {
    /// Keep streaming.
    Continue,
    /// Send a `Cancel` for this job (takes effect at the solve's next
    /// iteration boundary; events may keep arriving until then).
    Cancel,
}

/// How a submitted job ended, from the client's side of the wire.
#[derive(Debug)]
pub enum JobEnd {
    /// Converged (or ran to its iteration cap); full report attached.
    Done(Box<SolveReport>),
    /// Stopped early — cancel, deadline, budget, stagnation or divergence.
    Stopped {
        /// Why the solve stopped.
        reason: StopReason,
        /// Partial report, when the solve had started.
        report: Option<Box<SolveReport>>,
    },
    /// Failed (or panicked) server-side.
    Failed(String),
    /// Refused outright (invalid spec or daemon shutting down).
    Rejected(String),
    /// The session's admission window is full; resubmit after an
    /// outstanding job finishes.
    Busy {
        /// Window occupancy at refusal time.
        depth: usize,
        /// The window bound.
        capacity: usize,
    },
}

/// One complete job exchange: every streamed event plus the terminal reply.
#[derive(Debug)]
pub struct JobRun {
    /// The correlation id this client assigned.
    pub job_id: u64,
    /// Every `Event` frame received, in sequence order (the client verifies
    /// `seq` is gapless, so this really is the full stream).
    pub events: Vec<SolveEvent>,
    /// The terminal reply.
    pub end: JobEnd,
}

impl JobRun {
    /// Whether the job produced a completed report.
    pub fn is_done(&self) -> bool {
        matches!(self.end, JobEnd::Done(_))
    }

    /// The report, when the job finished or stopped with partial state.
    pub fn report(&self) -> Option<&SolveReport> {
        match &self.end {
            JobEnd::Done(report) => Some(report),
            JobEnd::Stopped {
                report: Some(report),
                ..
            } => Some(report),
            _ => None,
        }
    }
}

/// A connected protocol session.
pub struct Client {
    stream: TcpStream,
    session: u64,
    banner: String,
    next_job_id: u64,
}

impl Client {
    /// Connect, introduce ourselves, and wait for the daemon's `Welcome`.
    pub fn connect(addr: impl ToSocketAddrs, name: &str) -> Result<Self, WireError> {
        let mut stream = TcpStream::connect(addr)?;
        Frame::Hello {
            client: name.to_string(),
        }
        .write_to(&mut stream)?;
        match Frame::read_from(&mut stream)? {
            Some(Frame::Welcome { session, banner }) => Ok(Self {
                stream,
                session,
                banner,
                next_job_id: 1,
            }),
            Some(other) => Err(WireError::Malformed(format!(
                "expected Welcome, got {}",
                other.name()
            ))),
            None => Err(WireError::Io(
                "server closed the connection before Welcome".to_string(),
            )),
        }
    }

    /// The session id the daemon assigned to this connection.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The daemon's banner string.
    pub fn banner(&self) -> &str {
        &self.banner
    }

    /// Liveness round-trip.
    pub fn ping(&mut self, token: u64) -> Result<(), WireError> {
        Frame::Ping { token }.write_to(&mut self.stream)?;
        loop {
            match Frame::read_from(&mut self.stream)? {
                Some(Frame::Pong { token: echoed }) if echoed == token => return Ok(()),
                Some(Frame::Pong { token: echoed }) => {
                    return Err(WireError::Malformed(format!(
                        "Pong echoed {echoed}, expected {token}"
                    )))
                }
                Some(_) => continue, // stale frames from earlier jobs
                None => return Err(WireError::Io("connection closed during ping".to_string())),
            }
        }
    }

    /// Submit one job and drive it to its terminal frame, invoking
    /// `on_event` for every streamed [`SolveEvent`].  Returning
    /// [`ClientControl::Cancel`] from the callback sends a mid-flight
    /// `Cancel`; the stream then continues until the daemon's `Stopped`
    /// (cancellation lands at the solve's next iteration boundary).
    pub fn run_job(
        &mut self,
        spec: &WireJobSpec,
        mut on_event: impl FnMut(u64, &SolveEvent) -> ClientControl,
    ) -> Result<JobRun, WireError> {
        let job_id = self.next_job_id;
        self.next_job_id += 1;
        Frame::Submit {
            job_id,
            spec: Box::new(spec.clone()),
        }
        .write_to(&mut self.stream)?;
        let mut events: Vec<SolveEvent> = Vec::new();
        let mut cancel_sent = false;
        loop {
            let frame = match Frame::read_from(&mut self.stream)? {
                Some(frame) => frame,
                None => return Err(WireError::Io("connection closed mid-job".to_string())),
            };
            match frame {
                Frame::Accepted { job_id: id } if id == job_id => {}
                Frame::Busy {
                    job_id: id,
                    depth,
                    capacity,
                } if id == job_id => {
                    return Ok(JobRun {
                        job_id,
                        events,
                        end: JobEnd::Busy { depth, capacity },
                    })
                }
                Frame::Rejected { job_id: id, reason } if id == job_id => {
                    return Ok(JobRun {
                        job_id,
                        events,
                        end: JobEnd::Rejected(reason),
                    })
                }
                Frame::Event {
                    job_id: id,
                    seq,
                    event,
                } if id == job_id => {
                    if seq != events.len() as u64 {
                        return Err(WireError::Malformed(format!(
                            "event sequence gap: got seq {seq}, expected {}",
                            events.len()
                        )));
                    }
                    events.push(event);
                    if on_event(seq, &event) == ClientControl::Cancel && !cancel_sent {
                        Frame::Cancel { job_id }.write_to(&mut self.stream)?;
                        cancel_sent = true;
                    }
                }
                Frame::Done { job_id: id, report } if id == job_id => {
                    return Ok(JobRun {
                        job_id,
                        events,
                        end: JobEnd::Done(report),
                    })
                }
                Frame::Stopped {
                    job_id: id,
                    reason,
                    report,
                } if id == job_id => {
                    return Ok(JobRun {
                        job_id,
                        events,
                        end: JobEnd::Stopped { reason, report },
                    })
                }
                Frame::JobFailed { job_id: id, error } if id == job_id => {
                    return Ok(JobRun {
                        job_id,
                        events,
                        end: JobEnd::Failed(error),
                    })
                }
                // The daemon announcing shutdown mid-stream is informative;
                // our job's terminal frame still follows (Drain) or a
                // Rejected/Stopped already did (Abort).
                Frame::ShuttingDown => {}
                Frame::Pong { .. } => {}
                Frame::Goodbye => {
                    return Err(WireError::Io("server said Goodbye mid-job".to_string()))
                }
                other => {
                    return Err(WireError::Malformed(format!(
                        "unexpected {} frame mid-job",
                        other.name()
                    )))
                }
            }
        }
    }

    /// Ask the daemon to wind down; returns once it acknowledges.
    pub fn request_shutdown(&mut self, mode: WireShutdownMode) -> Result<(), WireError> {
        Frame::Shutdown { mode }.write_to(&mut self.stream)?;
        loop {
            match Frame::read_from(&mut self.stream)? {
                Some(Frame::ShuttingDown) | None => return Ok(()),
                Some(_) => continue,
            }
        }
    }

    /// End the session politely.
    pub fn close(mut self) {
        let _ = Frame::Goodbye.write_to(&mut self.stream);
        // Wait (bounded by the daemon's reply) for the Goodbye echo so the
        // daemon logs a clean close rather than a reset.
        let _ = Frame::read_from(&mut self.stream);
    }
}
