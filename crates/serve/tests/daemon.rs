//! End-to-end daemon tests over real sockets: streamed-event bitwise
//! fidelity on every backend, typed Busy back-pressure, per-job cancel
//! isolation, concurrent-client fairness under a full queue, deadline
//! ceilings and drain shutdown.

use mffv_mesh::WorkloadSpec;
use mffv_serve::frame::{Frame, WireShutdownMode};
use mffv_serve::wire::{BackendSel, WireJobSpec, WirePolicy};
use mffv_serve::{Client, ClientControl, JobEnd, RunningServer, ServeConfig, Server};
use mffv_solver::monitor::{RecordingMonitor, SolveEvent, StopReason};
use mffv_telemetry::Span;
use std::net::TcpStream;

fn start(config: ServeConfig) -> RunningServer {
    Server::new(config).bind().expect("bind")
}

fn quick_spec(backend: BackendSel) -> WireJobSpec {
    WireJobSpec::new(WorkloadSpec::quickstart().scaled(2), backend)
}

/// A job that runs for a long time unless stopped: a scaled-up grid (so
/// every CG iteration costs real wall-clock) with an unreachable tolerance.
/// CG's numeric-breakdown guard eventually ends it even unstopped, but only
/// after thousands of iterations — far beyond every cancel/deadline in
/// these tests.
fn plug_spec() -> WireJobSpec {
    WireJobSpec::new(
        WorkloadSpec {
            name: "plug-48x48x24".to_string(),
            dims: mffv_mesh::Dims::new(48, 48, 24),
            tolerance: 1e-30,
            max_iterations: 500_000,
            ..WorkloadSpec::quickstart()
        },
        BackendSel::HostF64,
    )
}

#[test]
fn streamed_events_are_bitwise_the_inprocess_history_on_every_backend() {
    let server = start(ServeConfig::default());
    let addr = server.local_addr();
    for backend in [
        BackendSel::HostF64,
        BackendSel::GpuRefA100,
        BackendSel::Dataflow,
    ] {
        let spec = quick_spec(backend);
        let mut client = Client::connect(addr, "fidelity").expect("connect");
        let run = client
            .run_job(&spec, |_, _| ClientControl::Continue)
            .expect("run");
        client.close();
        assert!(run.is_done(), "{:?} did not finish: {:?}", backend, run.end);

        // The in-process ground truth: the identical JobSpec observed by a
        // RecordingMonitor on this thread.
        let mut recorder = RecordingMonitor::new();
        let report = spec
            .to_job_spec(None)
            .execute_streamed(None, &Span::null(), Some(&mut recorder))
            .expect("in-process solve");

        assert_eq!(
            run.events, recorder.events,
            "{backend:?}: socket stream != in-process history"
        );
        // Belt and braces: residuals compared at the bit level, so -0.0,
        // subnormals etc. cannot hide behind float equality.
        let bits = |events: &[SolveEvent]| -> Vec<u64> {
            events
                .iter()
                .filter_map(|e| match e {
                    SolveEvent::Started { initial_rr } => Some(initial_rr.to_bits()),
                    SolveEvent::Iteration { rr, .. } => Some(rr.to_bits()),
                    SolveEvent::Converged { rr, .. } => Some(rr.to_bits()),
                    SolveEvent::Stopped(_) => None,
                })
                .collect()
        };
        assert_eq!(bits(&run.events), bits(&recorder.events));
        // And the shipped report matches the in-process one bitwise too.
        let streamed_report = run.report().expect("report");
        assert_eq!(streamed_report.backend, report.backend);
        let field_bits = |r: &mffv_solver::backend::SolveReport| -> Vec<u64> {
            r.pressure.as_slice().iter().map(|v| v.to_bits()).collect()
        };
        assert_eq!(field_bits(streamed_report), field_bits(&report));
    }
    server.shutdown(WireShutdownMode::Drain);
}

/// Raw-frame session: window 1 means a second outstanding Submit gets a
/// typed Busy immediately, while the first job keeps running and stays
/// cancellable.
#[test]
fn a_full_session_window_is_a_typed_busy_not_a_hang() {
    let server = start(
        ServeConfig::default()
            .with_workers(1)
            .with_queue_capacity(1)
            .with_session_window(1),
    );
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    Frame::Hello {
        client: "busy-test".into(),
    }
    .write_to(&mut stream)
    .unwrap();
    assert!(matches!(
        Frame::read_from(&mut stream).unwrap(),
        Some(Frame::Welcome { .. })
    ));

    Frame::Submit {
        job_id: 1,
        spec: Box::new(plug_spec()),
    }
    .write_to(&mut stream)
    .unwrap();
    assert!(matches!(
        Frame::read_from(&mut stream).unwrap(),
        Some(Frame::Accepted { job_id: 1 })
    ));
    // Wait for the first event so the plug is demonstrably in flight.
    match Frame::read_from(&mut stream).unwrap() {
        Some(Frame::Event { job_id: 1, .. }) => {}
        Some(other) => panic!("unexpected {} before first event", other.name()),
        None => panic!("eof"),
    }

    // Window full → typed Busy echoing the window occupancy.
    Frame::Submit {
        job_id: 2,
        spec: Box::new(quick_spec(BackendSel::HostF64)),
    }
    .write_to(&mut stream)
    .unwrap();
    loop {
        match Frame::read_from(&mut stream).unwrap() {
            Some(Frame::Busy {
                job_id: 2,
                depth,
                capacity,
            }) => {
                assert_eq!((depth, capacity), (1, 1));
                break;
            }
            Some(Frame::Event { job_id: 1, .. }) => continue,
            Some(other) => panic!("expected Busy, got {}", other.name()),
            None => panic!("eof"),
        }
    }

    // Cancel the plug; it stops at its next iteration boundary.
    Frame::Cancel { job_id: 1 }.write_to(&mut stream).unwrap();
    loop {
        match Frame::read_from(&mut stream).unwrap() {
            Some(Frame::Stopped {
                job_id: 1, reason, ..
            }) => {
                assert_eq!(reason, StopReason::Cancelled);
                break;
            }
            Some(Frame::Event { job_id: 1, .. }) => continue,
            Some(other) => panic!("expected Stopped, got {}", other.name()),
            None => panic!("eof"),
        }
    }

    // The window is free again: the same session can now submit and finish.
    Frame::Submit {
        job_id: 3,
        spec: Box::new(quick_spec(BackendSel::HostF64)),
    }
    .write_to(&mut stream)
    .unwrap();
    loop {
        match Frame::read_from(&mut stream).unwrap() {
            Some(Frame::Accepted { job_id: 3 }) | Some(Frame::Event { job_id: 3, .. }) => continue,
            Some(Frame::Done { job_id: 3, .. }) => break,
            Some(other) => panic!("unexpected {}", other.name()),
            None => panic!("eof"),
        }
    }
    Frame::Goodbye.write_to(&mut stream).unwrap();
    server.shutdown(WireShutdownMode::Abort);
}

/// Two clients, two workers: one cancels mid-flight, the other's solve is
/// untouched and converges — cancellation is strictly per-job.
#[test]
fn cancel_stops_only_the_cancelling_clients_solve() {
    let server = start(
        ServeConfig::default()
            .with_workers(2)
            .with_queue_capacity(4),
    );
    let addr = server.local_addr();

    let steady = std::thread::spawn(move || {
        let mut client = Client::connect(addr, "steady").expect("connect");
        let run = client
            .run_job(&quick_spec(BackendSel::HostF64), |_, _| {
                ClientControl::Continue
            })
            .expect("run");
        client.close();
        run
    });

    let mut canceller = Client::connect(addr, "canceller").expect("connect");
    let run = canceller
        .run_job(&plug_spec(), |_, event| {
            // Cancel after a handful of iterations; the stop must land at an
            // iteration boundary shortly after.
            match event {
                SolveEvent::Iteration { k, .. } if *k >= 3 => ClientControl::Cancel,
                _ => ClientControl::Continue,
            }
        })
        .expect("run");
    canceller.close();
    match run.end {
        JobEnd::Stopped { reason, .. } => assert_eq!(reason, StopReason::Cancelled),
        other => panic!("canceller expected Stopped(Cancelled), got {other:?}"),
    }
    // Boundary semantics: the stream ends with Stopped(Cancelled) and only a
    // bounded overshoot past the cancel point (frames already in flight).
    assert!(
        matches!(
            run.events.last(),
            Some(SolveEvent::Stopped(StopReason::Cancelled))
        ),
        "stream should end with the Stopped event"
    );

    let steady_run = steady.join().expect("steady thread");
    assert!(
        steady_run.is_done(),
        "steady client was affected by the cancel: {:?}",
        steady_run.end
    );
}

/// One worker, a capacity-1 engine queue, and two clients each submitting
/// two jobs: the round-robin dispatcher interleaves sessions, so both
/// clients finish all their work even though the queue never has room for
/// one session's whole backlog.
#[test]
fn concurrent_clients_both_progress_under_a_full_queue() {
    let server = start(
        ServeConfig::default()
            .with_workers(1)
            .with_queue_capacity(1)
            .with_session_window(2),
    );
    let addr = server.local_addr();
    let clients: Vec<_> = (0..2)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr, &format!("client-{i}")).expect("connect");
                let mut done = 0;
                for _ in 0..2 {
                    let run = client
                        .run_job(&quick_spec(BackendSel::HostF64), |_, _| {
                            ClientControl::Continue
                        })
                        .expect("run");
                    if run.is_done() {
                        done += 1;
                    }
                }
                client.close();
                done
            })
        })
        .collect();
    for handle in clients {
        assert_eq!(handle.join().expect("client thread"), 2);
    }
    server.shutdown(WireShutdownMode::Drain);
}

/// The server's per-session deadline ceiling stops a runaway job even when
/// the client asked for no deadline at all.
#[test]
fn the_session_deadline_ceiling_stops_runaway_jobs() {
    let server = start(ServeConfig::default().with_max_session_seconds(0.05));
    let mut client = Client::connect(server.local_addr(), "deadline").expect("connect");
    let spec = plug_spec();
    assert!(spec.policy.is_empty(), "client asked for no policy");
    let run = client
        .run_job(&spec, |_, _| ClientControl::Continue)
        .expect("run");
    client.close();
    match run.end {
        JobEnd::Stopped { reason, .. } => assert_eq!(reason, StopReason::DeadlineExpired),
        other => panic!("expected Stopped(DeadlineExpired), got {other:?}"),
    }
    server.shutdown(WireShutdownMode::Drain);
}

/// Refuse-then-drain: after a Shutdown frame the daemon rejects new
/// submissions, but a job accepted before the request still runs to its
/// terminal frame under Drain.
#[test]
fn drain_shutdown_finishes_accepted_work_and_refuses_new_work() {
    let server = start(ServeConfig::default());
    let addr = server.local_addr();

    // A job that takes a little while (bounded by its iteration budget), on
    // a raw stream so we can interleave the shutdown request.
    let mut stream = TcpStream::connect(addr).expect("connect");
    Frame::Hello {
        client: "drain".into(),
    }
    .write_to(&mut stream)
    .unwrap();
    assert!(matches!(
        Frame::read_from(&mut stream).unwrap(),
        Some(Frame::Welcome { .. })
    ));
    let mut bounded_plug = plug_spec();
    bounded_plug.policy = WirePolicy {
        iteration_budget: Some(200),
        ..WirePolicy::default()
    };
    Frame::Submit {
        job_id: 7,
        spec: Box::new(bounded_plug),
    }
    .write_to(&mut stream)
    .unwrap();
    assert!(matches!(
        Frame::read_from(&mut stream).unwrap(),
        Some(Frame::Accepted { job_id: 7 })
    ));

    // Another client asks the daemon to stop…
    let mut admin = Client::connect(addr, "admin").expect("connect");
    admin
        .request_shutdown(WireShutdownMode::Drain)
        .expect("shutdown request");
    assert_eq!(
        server.shutdown_requested(),
        Some(WireShutdownMode::Drain),
        "embedder observes the request"
    );

    // …after which new submissions on the first session are refused…
    Frame::Submit {
        job_id: 8,
        spec: Box::new(quick_spec(BackendSel::HostF64)),
    }
    .write_to(&mut stream)
    .unwrap();

    // …while the accepted job still reaches its terminal frame.
    let terminal;
    let mut rejected = false;
    loop {
        match Frame::read_from(&mut stream).unwrap() {
            Some(Frame::Event { job_id: 7, .. }) => continue,
            Some(Frame::Rejected { job_id: 8, .. }) => rejected = true,
            Some(Frame::Stopped {
                job_id: 7, reason, ..
            }) => {
                terminal = Some(reason);
                break;
            }
            Some(Frame::Done { job_id: 7, .. }) => {
                terminal = Some(StopReason::IterationBudget);
                break;
            }
            Some(Frame::ShuttingDown) => continue,
            Some(other) => panic!("unexpected {}", other.name()),
            None => panic!("eof before the accepted job's terminal frame"),
        }
    }
    assert!(rejected, "post-shutdown submit was not refused");
    assert_eq!(terminal, Some(StopReason::IterationBudget));
    server.shutdown(WireShutdownMode::Drain);
}
