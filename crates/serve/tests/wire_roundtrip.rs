//! Property tests for the wire format: every frame type round-trips
//! bitwise, and corrupt / truncated / oversized input decodes to a typed
//! [`WireError`] — never a panic, never a bogus frame.

use mffv_mesh::workload::BoundarySpec;
use mffv_mesh::{
    CellIndex, Dims, DtPolicy, PermeabilityModel, TransientSpec, Well, WellSet, WorkloadSpec,
};
use mffv_serve::frame::{fnv1a32, Frame, WireShutdownMode, MAX_FRAME_LEN, WIRE_VERSION};
use mffv_serve::wire::{BackendSel, WireError, WireJobSpec, WirePolicy};
use mffv_solver::backend::{Precision, PreconditionerKind, SolveConfig};
use mffv_solver::monitor::{SolveEvent, StopReason};
use proptest::{prop_assert, proptest, ProptestConfig};

/// A job spec whose every field is driven off the RNG draws, exercising all
/// enum arms over the run.
fn arbitrary_job(pick: u64, a: f64, b: u64) -> WireJobSpec {
    let backend = BackendSel::all()[(pick % 5) as usize];
    let permeability = match pick % 4 {
        0 => PermeabilityModel::Homogeneous { value: a },
        1 => PermeabilityModel::Layered {
            layer_values: vec![a, a * 2.0, a * 3.0],
        },
        2 => PermeabilityModel::LogNormal {
            mean_log: -30.0 + a,
            std_log: a.abs(),
            seed: b,
        },
        _ => PermeabilityModel::Channelized {
            background: a,
            channel: a * 10.0,
            num_channels: (b % 5) as usize,
            half_width: 1.5,
            amplitude: a,
            seed: b,
        },
    };
    let boundary = match pick % 3 {
        0 => BoundarySpec::SourceProducer {
            source_pressure: a * 1e7,
            producer_pressure: a * 1e6,
        },
        1 => BoundarySpec::XFaces {
            left_pressure: a * 1e7,
            right_pressure: a * 1e6,
        },
        _ => BoundarySpec::None,
    };
    let workload = WorkloadSpec {
        name: format!("w{pick}"),
        dims: Dims::new(4 + (b % 8) as usize, 4, 2),
        boundary,
        permeability,
        tolerance: a.abs().max(1e-12),
        ..WorkloadSpec::quickstart()
    };
    let transient = (pick.is_multiple_of(2)).then(|| {
        let well = if b.is_multiple_of(2) {
            Well::rate("inj", CellIndex::new(1, 1, 0), a)
        } else {
            Well {
                name: "prod".to_string(),
                cell: CellIndex::new(2, 2, 1),
                control: mffv_mesh::WellControl::Bhp {
                    pressure: a * 1e6,
                    productivity_index: 1e-9,
                },
                start_time: 0.0,
                end_time: f64::INFINITY,
            }
        };
        let dt = if pick.is_multiple_of(4) {
            DtPolicy::Ramp {
                initial: 0.5,
                growth: 1.5,
                max: a.abs() + 1.0,
            }
        } else {
            DtPolicy::Fixed { dt: a.abs() + 0.1 }
        };
        let mut spec = TransientSpec::new(30.0, 1.0, 1e-9).with_wells(WellSet::new(vec![well]));
        spec.dt = dt;
        spec.snapshot_times = vec![a.abs(), a.abs() * 2.0];
        spec.warm_start = b.is_multiple_of(2);
        spec
    });
    WireJobSpec {
        workload,
        backend,
        config: SolveConfig {
            tolerance: (pick.is_multiple_of(2)).then_some(a.abs()),
            max_iterations: (b.is_multiple_of(2)).then_some((b % 10_000) as usize),
            precision: if pick.is_multiple_of(2) {
                Precision::F64
            } else {
                Precision::F32
            },
            threads: (pick.is_multiple_of(3)).then_some(1 + (b % 8) as usize),
            preconditioner: PreconditionerKind::ALL[(pick % 3) as usize],
        },
        seed: (b % 2 == 1).then_some(b),
        policy: WirePolicy {
            iteration_budget: (pick.is_multiple_of(2)).then_some((b % 5_000) as usize),
            deadline_seconds: (pick.is_multiple_of(3)).then_some(a.abs()),
            stagnation: (pick.is_multiple_of(5)).then_some((1 + (b % 50) as usize, 1e-3)),
            divergence_factor: (b.is_multiple_of(3)).then_some(a.abs() * 1e6),
        },
        transient,
    }
}

/// One representative of every frame tag, fields driven off the draws.
/// `rr_bits` feeds `f64::from_bits`, so events cover NaN, infinities,
/// subnormals and negative zero — the bitwise contract, not just values.
fn arbitrary_frames(pick: u64, job_id: u64, rr_bits: u64, a: f64) -> Vec<Frame> {
    let event = match pick % 4 {
        0 => SolveEvent::Started {
            initial_rr: f64::from_bits(rr_bits),
        },
        1 => SolveEvent::Iteration {
            k: (job_id % 100_000) as usize,
            rr: f64::from_bits(rr_bits),
        },
        2 => SolveEvent::Converged {
            iterations: (job_id % 100_000) as usize,
            rr: f64::from_bits(rr_bits),
        },
        _ => SolveEvent::Stopped(arbitrary_reason(pick)),
    };
    vec![
        Frame::Hello {
            client: format!("client-{job_id}"),
        },
        Frame::Welcome {
            session: job_id,
            banner: "mffv-serve".to_string(),
        },
        Frame::Submit {
            job_id,
            spec: Box::new(arbitrary_job(pick, a, rr_bits)),
        },
        Frame::Accepted { job_id },
        Frame::Busy {
            job_id,
            depth: (pick % 64) as usize,
            capacity: 64,
        },
        Frame::Rejected {
            job_id,
            reason: format!("reason {pick}"),
        },
        Frame::Cancel { job_id },
        Frame::Event {
            job_id,
            seq: pick,
            event,
        },
        Frame::Stopped {
            job_id,
            reason: arbitrary_reason(job_id),
            report: None,
        },
        Frame::JobFailed {
            job_id,
            error: format!("error {pick}"),
        },
        Frame::Ping { token: rr_bits },
        Frame::Pong { token: rr_bits },
        Frame::Shutdown {
            mode: if pick.is_multiple_of(2) {
                WireShutdownMode::Drain
            } else {
                WireShutdownMode::Abort
            },
        },
        Frame::ShuttingDown,
        Frame::Goodbye,
    ]
}

fn arbitrary_reason(pick: u64) -> StopReason {
    [
        StopReason::Cancelled,
        StopReason::DeadlineExpired,
        StopReason::IterationBudget,
        StopReason::Stagnated,
        StopReason::Diverged,
        StopReason::MonitorRequest,
        StopReason::Breakdown,
    ][(pick % 7) as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every frame type round-trips byte-stably: encode ∘ decode ∘ encode
    /// is the identity on wire bytes (which implies bitwise field fidelity
    /// without needing PartialEq on reports).
    #[test]
    fn every_frame_type_roundtrips_bitwise(
        pick in 0u64..1_000_000,
        job_id in 0u64..u64::MAX,
        rr_bits in 0u64..u64::MAX,
        a in -1.0e3f64..1.0e3,
    ) {
        for frame in arbitrary_frames(pick, job_id, rr_bits, a) {
            let bytes = frame.to_wire_bytes();
            let decoded = Frame::from_wire_bytes(&bytes)
                .unwrap_or_else(|e| panic!("{} failed to decode: {e}", frame.name()));
            prop_assert!(decoded.tag() == frame.tag(), "tag changed for {}", frame.name());
            prop_assert!(
                decoded.to_wire_bytes() == bytes,
                "{} is not byte-stable",
                frame.name()
            );
        }
    }

    /// Flipping any single byte of a frame makes it fail to decode with a
    /// typed error — the checksum (or the structural validation it guards)
    /// catches every one-byte corruption.
    #[test]
    fn single_byte_corruption_is_always_rejected(
        pick in 0u64..1_000_000,
        job_id in 0u64..u64::MAX,
        rr_bits in 0u64..u64::MAX,
        a in -1.0e3f64..1.0e3,
        flip_seed in 0usize..1_000_000,
        flip_bit in 0u8..8,
    ) {
        for frame in arbitrary_frames(pick, job_id, rr_bits, a) {
            let bytes = frame.to_wire_bytes();
            let mut corrupt = bytes.clone();
            let index = flip_seed % corrupt.len();
            corrupt[index] ^= 1 << flip_bit;
            let result = Frame::from_wire_bytes(&corrupt);
            prop_assert!(
                result.is_err(),
                "{}: flipping byte {index} bit {flip_bit} went undetected",
                frame.name()
            );
        }
    }

    /// Every strict prefix of a frame is a typed truncation error.
    #[test]
    fn truncated_frames_are_typed_errors(
        pick in 0u64..1_000_000,
        job_id in 0u64..u64::MAX,
        rr_bits in 0u64..u64::MAX,
        a in -1.0e3f64..1.0e3,
        cut_seed in 0usize..1_000_000,
    ) {
        for frame in arbitrary_frames(pick, job_id, rr_bits, a) {
            let bytes = frame.to_wire_bytes();
            let cut = cut_seed % bytes.len(); // strict prefix, 0..len
            let result = Frame::from_wire_bytes(&bytes[..cut]);
            prop_assert!(
                matches!(result, Err(WireError::Truncated { .. })),
                "{} truncated to {cut} bytes decoded to {result:?}",
                frame.name()
            );
        }
    }

    /// A length prefix beyond MAX_FRAME_LEN is rejected before any
    /// allocation, whatever follows it.
    #[test]
    fn oversized_length_prefixes_are_rejected(extra in 1u64..u32::MAX as u64) {
        let len = (MAX_FRAME_LEN as u64 + extra).min(u32::MAX as u64) as u32;
        let mut bytes = len.to_be_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 16]);
        let result = Frame::from_wire_bytes(&bytes);
        prop_assert!(
            matches!(result, Err(WireError::Oversized { .. })),
            "length {len} accepted: {result:?}"
        );
    }

    /// Arbitrary byte soup never panics the decoder (and, since a random
    /// 32-bit checksum match is astronomically unlikely, never yields a
    /// frame).
    #[test]
    fn random_bytes_never_panic_the_decoder(
        seed in 0u64..u64::MAX,
        len in 0usize..256,
    ) {
        let mut state = seed | 1;
        let bytes: Vec<u8> = (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state & 0xFF) as u8
            })
            .collect();
        let _ = Frame::from_wire_bytes(&bytes); // must return, not panic
    }
}

#[test]
fn version_byte_gates_everything_after_it() {
    let bytes = Frame::Goodbye.to_wire_bytes();
    // Rewrite the version byte and fix up the checksum so only the version
    // check can object.
    let mut future = bytes.clone();
    future[4] = WIRE_VERSION + 1;
    let content_end = future.len() - 4;
    let checksum = fnv1a32(&future[4..content_end]);
    future[content_end..].copy_from_slice(&checksum.to_be_bytes());
    match Frame::from_wire_bytes(&future) {
        Err(WireError::BadVersion { got, expected }) => {
            assert_eq!(got, WIRE_VERSION + 1);
            assert_eq!(expected, WIRE_VERSION);
        }
        other => panic!("expected BadVersion, got {other:?}"),
    }
}

#[test]
fn trailing_bytes_after_a_frame_are_rejected() {
    let mut bytes = Frame::Goodbye.to_wire_bytes();
    bytes.push(0);
    assert!(matches!(
        Frame::from_wire_bytes(&bytes),
        Err(WireError::TrailingBytes { .. })
    ));
}
