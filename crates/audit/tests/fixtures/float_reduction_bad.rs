// Fixture: rule `float-reduction` must fire on the three banned shapes.
pub fn reductions(xs: &[f64], ws: &[f32]) -> (f64, f32, f64, f64) {
    let a = xs.iter().copied().sum::<f64>();
    let b = ws.iter().copied().sum::<f32>();
    let c: f64 = xs.iter().map(|x| x * 2.0).sum();
    let d = xs.iter().copied().fold(0.0, |acc, x| acc + x);
    (a, b, c, d)
}
