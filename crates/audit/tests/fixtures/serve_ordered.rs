// Fixture: the serve crate is an ordered crate — its session tables and
// event streams are contractually submission-ordered, so hash-ordered
// containers and unblessed float reductions must fire when scanned as if
// at crates/serve/src/fake.rs (and stay silent under tests/ or bin/).
use std::collections::HashMap;

pub fn pending_depth(sessions: &HashMap<u64, Vec<u64>>) -> usize {
    sessions.values().map(|jobs| jobs.len()).sum()
}

pub fn mean_residual(rr: &[f64]) -> f64 {
    rr.iter().sum::<f64>() / rr.len() as f64
}
