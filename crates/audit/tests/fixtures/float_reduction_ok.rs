// Fixture: rule `float-reduction` must NOT fire — integer sums, string/comment
// traps, and an annotated reassociation-safe fold.
pub fn reductions(xs: &[f64], counts: &[usize]) -> (usize, f64, f64) {
    let n: usize = counts.iter().sum();
    let label = "total.sum::<f64>() goes through seq_sum"; // .sum::<f64>() in comment
    // audit: allow(float-reduction) — reassociation-safe: max is associative
    // and commutative over the non-NaN values here.
    let peak = xs.iter().copied().fold(0.0, f64::max);
    let routed = mffv_mesh::seq_sum(xs.iter().copied());
    let _ = label;
    (n, peak, routed)
}
