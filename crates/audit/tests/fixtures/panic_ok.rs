// Fixture: rule `panic` must NOT fire — error returns, annotated invariants,
// string/comment traps, and non-panicking unwrap_* variants.
pub fn first(xs: &[u32]) -> Result<u32, String> {
    // Calling .unwrap() here would be wrong (comment trap).
    let msg = "do not .expect( anything from library code"; // string trap
    let head = xs.first().copied().ok_or_else(|| msg.to_string())?;
    let fallback = xs.last().copied().unwrap_or_default();
    Ok(head.max(fallback))
}

pub fn checked(xs: &[u32]) -> u32 {
    // audit: allow(panic) — invariant: callers validated non-emptiness at intake.
    xs.first().copied().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(super::first(&[3]).unwrap(), 3);
    }
}
