// Fixture: rule `nondet-iter` must fire on hash-ordered containers in an
// ordered crate (scanned as if at crates/solver/src/fake.rs).
use std::collections::HashMap;

pub fn count(names: &[String]) -> usize {
    let mut seen: HashMap<String, usize> = HashMap::new();
    for n in names {
        *seen.entry(n.clone()).or_insert(0) += 1;
    }
    seen.len()
}
