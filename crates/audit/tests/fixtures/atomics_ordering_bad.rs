// Fixture: rule `atomics-ordering` must fire — a Relaxed load on a
// cancellation flag.
use std::sync::atomic::{AtomicBool, Ordering};

pub fn is_cancelled(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Relaxed)
}
