// Fixture: rule `wall-clock` must NOT fire — annotated telemetry, plus
// string/comment traps.
pub fn timed(label: &str) -> f64 {
    // Instant::now() in a comment is fine.
    let msg = "never call Instant::now here"; // string trap
    // audit: allow(wall-clock) — telemetry: feeds the returned elapsed seconds only.
    // (The clippy-mirror attribute below must be transparent to the lookback.)
    #[allow(clippy::disallowed_methods)]
    let start = std::time::Instant::now();
    let _ = (label, msg);
    start.elapsed().as_secs_f64()
}
