// Fixture: rule `wall-clock` must fire — Instant/SystemTime reads outside
// mffv-perf and the monitor module, unannotated.
pub fn jittered_tolerance(base: f64) -> f64 {
    let t = std::time::Instant::now();
    let s = std::time::SystemTime::now();
    let _ = s;
    base * (1.0 + t.elapsed().as_secs_f64())
}
