// Fixture: rule `atomics-ordering` must NOT fire — SeqCst control flow, an
// annotated Relaxed counter, and string/comment traps.
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub fn is_cancelled(flag: &AtomicBool) -> bool {
    // Ordering::Relaxed would be wrong here (comment trap).
    let doc = "never use Ordering::Relaxed on cancel tokens"; // string trap
    let _ = doc;
    flag.load(Ordering::SeqCst)
}

pub fn bump(counter: &AtomicU64) -> u64 {
    // audit: allow(atomics-ordering) — statistics counter only; no thread makes
    // a control-flow decision from this value.
    counter.fetch_add(1, Ordering::Relaxed)
}
