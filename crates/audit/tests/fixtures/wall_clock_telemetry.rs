// Fixture: rule `wall-clock` and the blessed-home exemption — idiomatic
// mffv-telemetry timing code (a Stopwatch-style wrapper) with raw, completely
// unannotated clock reads.  Analyzed under `crates/telemetry/...` this must
// stay silent (the whole crate is a blessed wall-clock home); under any other
// non-exempt crate the same source must fire once per clock read.
pub struct FakeStopwatch {
    started: std::time::Instant,
}

impl FakeStopwatch {
    pub fn start() -> FakeStopwatch {
        FakeStopwatch {
            started: std::time::Instant::now(),
        }
    }

    pub fn elapsed_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

pub fn unix_epoch_seconds() -> u64 {
    match std::time::SystemTime::now().duration_since(std::time::SystemTime::UNIX_EPOCH) {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}
