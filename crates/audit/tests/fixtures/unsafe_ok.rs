#![forbid(unsafe_code)]
// Fixture: rule `unsafe` must NOT fire — the crate root carries the forbid
// attribute, and `unsafe` only appears in a string and a comment.
pub fn describe() -> &'static str {
    // The word unsafe { } in a comment must not trip the rule.
    "this crate has no unsafe code"
}
