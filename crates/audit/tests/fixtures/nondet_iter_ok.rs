// Fixture: rule `nondet-iter` must NOT fire here — the traps are a string
// literal, a comment, an annotated line, and a BTreeMap.
use std::collections::BTreeMap;

pub fn count(names: &[String]) -> usize {
    // A HashMap would be wrong here (this comment must not trip the rule).
    let doc = "prefer BTreeMap over HashMap for ordered output";
    // audit: allow(nondet-iter) — membership-only set; iteration order never escapes.
    let allowed = std::collections::HashSet::from([doc.len()]);
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    for n in names {
        *seen.entry(n.clone()).or_insert(0) += 1;
    }
    seen.len() + allowed.len() - 1
}

#[cfg(test)]
mod tests {
    #[test]
    fn hash_sets_are_fine_in_tests() {
        let s: std::collections::HashSet<u32> = [1, 2].into_iter().collect();
        assert_eq!(s.len(), 2);
    }
}
