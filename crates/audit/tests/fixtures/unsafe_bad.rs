// Fixture: rule `unsafe` must fire — scanned as a crate root (lib.rs) with no
// `#![forbid(unsafe_code)]`, plus an unsafe block with no SAFETY: comment and
// no UNSAFE_LEDGER.md entry.
pub fn reinterpret(x: &[u8]) -> u32 {
    let mut out = 0u32;
    unsafe {
        std::ptr::copy_nonoverlapping(x.as_ptr(), (&mut out as *mut u32).cast(), 4);
    }
    out
}
