// Fixture: rule `panic` must fire on the unwrap family in library paths,
// including an annotation whose justification lacks the required invariant.
pub fn first(xs: &[u32]) -> u32 {
    let head = xs.first().unwrap();
    let tail = xs.last().expect("non-empty");
    if *head > *tail {
        // audit: allow(panic) — looks justified but names no invariant.
        unreachable!("sorted input");
    }
    *head
}

pub fn later() -> u32 {
    todo!()
}
