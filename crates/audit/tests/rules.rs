//! Fixture self-tests: one positive (rule fires) and one negative (rule stays
//! silent, including string-literal and comment traps) case per rule.
//!
//! Fixtures live under `tests/fixtures/` — a directory the workspace walker
//! deliberately skips, because the positive cases *are* violations.  Each
//! fixture is analyzed under a pretend workspace path so path-derived rule
//! applicability (ordered crate, crate root, test path) is exercised too.

use mffv_audit::analyze_source;
use mffv_audit::rules::RuleId;

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()))
}

/// Analyze a fixture as if it sat at `rel_path` in the workspace.
fn findings_at(rel_path: &str, name: &str, ledger: Option<&str>) -> Vec<(usize, RuleId)> {
    analyze_source(rel_path, &fixture(name), ledger)
        .into_iter()
        .map(|f| (f.line, f.rule))
        .collect()
}

fn rules_only(findings: &[(usize, RuleId)]) -> Vec<RuleId> {
    findings.iter().map(|&(_, r)| r).collect()
}

// ---------------------------------------------------------------- nondet-iter

#[test]
fn nondet_iter_fires_on_hash_containers_in_ordered_crates() {
    let f = findings_at("crates/solver/src/fake.rs", "nondet_iter_bad.rs", None);
    let hits: Vec<_> = f
        .iter()
        .filter(|&&(_, r)| r == RuleId::NondetIter)
        .collect();
    // `use` line + two HashMap mentions on the binding line.
    assert!(
        hits.len() >= 2,
        "expected >=2 nondet-iter findings, got {f:?}"
    );
}

#[test]
fn nondet_iter_ignores_strings_comments_annotations_tests_and_unordered_crates() {
    let f = findings_at("crates/solver/src/fake.rs", "nondet_iter_ok.rs", None);
    assert!(
        !rules_only(&f).contains(&RuleId::NondetIter),
        "negative fixture tripped nondet-iter: {f:?}"
    );
    // The same bad fixture in a non-ordered crate (perf) is out of scope.
    let perf = findings_at("crates/perf/src/fake.rs", "nondet_iter_bad.rs", None);
    assert!(!rules_only(&perf).contains(&RuleId::NondetIter));
    // …and in a test path of an ordered crate too.
    let test_path = findings_at("crates/solver/tests/fake.rs", "nondet_iter_bad.rs", None);
    assert!(!rules_only(&test_path).contains(&RuleId::NondetIter));
}

// ------------------------------------------------------------ float-reduction

#[test]
fn float_reduction_fires_on_turbofish_typed_sum_and_float_fold() {
    let f = findings_at("crates/solver/src/fake.rs", "float_reduction_bad.rs", None);
    let hits: Vec<_> = f
        .iter()
        .filter(|&&(_, r)| r == RuleId::FloatReduction)
        .collect();
    // .sum::<f64>(), .sum::<f32>(), typed `let c: f64 = ….sum()`, .fold(0.0.
    assert_eq!(hits.len(), 4, "expected 4 float-reduction findings: {f:?}");
}

#[test]
fn float_reduction_ignores_integer_sums_annotations_and_blessed_homes() {
    let f = findings_at("crates/solver/src/fake.rs", "float_reduction_ok.rs", None);
    assert!(
        !rules_only(&f).contains(&RuleId::FloatReduction),
        "negative fixture tripped float-reduction: {f:?}"
    );
    // The blessed reduction home may contain raw sums (its tests/oracles do).
    let home = findings_at(
        "crates/solver/src/reduction.rs",
        "float_reduction_bad.rs",
        None,
    );
    assert!(!rules_only(&home).contains(&RuleId::FloatReduction));
}

// ----------------------------------------------------------------------- panic

#[test]
fn panic_fires_on_unwrap_family_and_reasonless_annotations() {
    let f = findings_at("crates/engine/src/fake.rs", "panic_bad.rs", None);
    let hits: Vec<_> = f.iter().filter(|&&(_, r)| r == RuleId::Panic).collect();
    // .unwrap(), .expect(, unreachable! (annotation lacks `invariant:`), todo!.
    assert_eq!(hits.len(), 4, "expected 4 panic findings: {f:?}");
}

#[test]
fn panic_ignores_error_returns_invariant_annotations_tests_and_traps() {
    let f = findings_at("crates/engine/src/fake.rs", "panic_ok.rs", None);
    assert!(
        !rules_only(&f).contains(&RuleId::Panic),
        "negative fixture tripped panic: {f:?}"
    );
    // Example and bench paths are outside the rule.
    let example = findings_at("examples/fake.rs", "panic_bad.rs", None);
    assert!(!rules_only(&example).contains(&RuleId::Panic));
}

// ---------------------------------------------------------------------- unsafe

#[test]
fn unsafe_fires_on_missing_forbid_and_unledgered_blocks() {
    let f = findings_at("crates/fv/src/lib.rs", "unsafe_bad.rs", None);
    let hits: Vec<_> = f.iter().filter(|&&(_, r)| r == RuleId::Unsafe).collect();
    // Missing crate-root forbid (line 0) + the bare unsafe block.
    assert_eq!(hits.len(), 2, "expected 2 unsafe findings: {f:?}");
    assert!(
        f.contains(&(0, RuleId::Unsafe)),
        "missing-forbid finding: {f:?}"
    );
}

#[test]
fn unsafe_accepts_forbidding_roots_and_ledgered_safety_blocks() {
    let f = findings_at("crates/fv/src/lib.rs", "unsafe_ok.rs", None);
    assert!(
        !rules_only(&f).contains(&RuleId::Unsafe),
        "negative fixture tripped unsafe: {f:?}"
    );
    // A SAFETY:-commented block registered in the ledger passes even where
    // the forbid attribute is absent on a non-root file.
    let src = "pub fn f(x: &[u8]) -> u8 {\n    // SAFETY: caller guarantees x is non-empty.\n    unsafe { *x.get_unchecked(0) }\n}\n";
    let ledger = "# UNSAFE_LEDGER\n- crates/fv/src/fake.rs — bounds proven by caller\n";
    let via_ledger = analyze_source("crates/fv/src/fake.rs", src, Some(ledger));
    assert!(
        !via_ledger.iter().any(|f| f.rule == RuleId::Unsafe),
        "ledgered SAFETY block tripped unsafe: {via_ledger:?}"
    );
    // The same block without a ledger entry fails.
    let no_ledger = analyze_source("crates/fv/src/fake.rs", src, None);
    assert!(no_ledger.iter().any(|f| f.rule == RuleId::Unsafe));
}

// ------------------------------------------------------------------ wall-clock

#[test]
fn wall_clock_fires_outside_perf_and_monitor() {
    let f = findings_at("crates/mesh/src/fake.rs", "wall_clock_bad.rs", None);
    let hits: Vec<_> = f.iter().filter(|&&(_, r)| r == RuleId::WallClock).collect();
    // Instant::now + SystemTime.
    assert_eq!(hits.len(), 2, "expected 2 wall-clock findings: {f:?}");
}

#[test]
fn wall_clock_is_allowed_in_perf_monitor_and_annotated_sites() {
    let f = findings_at("crates/mesh/src/fake.rs", "wall_clock_ok.rs", None);
    assert!(
        !rules_only(&f).contains(&RuleId::WallClock),
        "negative fixture tripped wall-clock: {f:?}"
    );
    let perf = findings_at("crates/perf/src/fake.rs", "wall_clock_bad.rs", None);
    assert!(!rules_only(&perf).contains(&RuleId::WallClock));
    let monitor = findings_at("crates/solver/src/monitor.rs", "wall_clock_bad.rs", None);
    assert!(!rules_only(&monitor).contains(&RuleId::WallClock));
}

#[test]
fn wall_clock_blesses_the_telemetry_crate_as_a_home() {
    // Idiomatic Stopwatch-style code with raw, unannotated clock reads is
    // clean inside mffv-telemetry — the crate IS the blessed timing home…
    let telemetry = findings_at(
        "crates/telemetry/src/fake.rs",
        "wall_clock_telemetry.rs",
        None,
    );
    assert!(
        !rules_only(&telemetry).contains(&RuleId::WallClock),
        "telemetry home tripped wall-clock: {telemetry:?}"
    );
    // …while byte-identical source in a non-exempt crate fires once per
    // clock read (Instant::now + SystemTime), proving the exemption is
    // path-scoped rather than pattern-scoped.
    let engine = findings_at("crates/engine/src/fake.rs", "wall_clock_telemetry.rs", None);
    let hits: Vec<_> = engine
        .iter()
        .filter(|&&(_, r)| r == RuleId::WallClock)
        .collect();
    assert_eq!(hits.len(), 2, "expected 2 wall-clock findings: {engine:?}");
}

// ------------------------------------------------------------ atomics-ordering

#[test]
fn atomics_ordering_fires_on_relaxed() {
    let f = findings_at("crates/engine/src/fake.rs", "atomics_ordering_bad.rs", None);
    let hits: Vec<_> = f
        .iter()
        .filter(|&&(_, r)| r == RuleId::AtomicsOrdering)
        .collect();
    assert_eq!(hits.len(), 1, "expected 1 atomics-ordering finding: {f:?}");
}

#[test]
fn atomics_ordering_accepts_seqcst_and_annotated_counters() {
    let f = findings_at("crates/engine/src/fake.rs", "atomics_ordering_ok.rs", None);
    assert!(
        !rules_only(&f).contains(&RuleId::AtomicsOrdering),
        "negative fixture tripped atomics-ordering: {f:?}"
    );
}

// ------------------------------------------------------- output-format contract

#[test]
fn findings_render_as_stable_sorted_records() {
    let findings = analyze_source(
        "crates/solver/src/fake.rs",
        &fixture("float_reduction_bad.rs"),
        None,
    );
    assert!(!findings.is_empty());
    let mut sorted = findings.clone();
    sorted.sort();
    assert_eq!(findings, sorted, "findings must come out sorted");
    let rendered = findings[0].to_string();
    // `file:line rule-id message (suggestion)`
    assert!(
        rendered.starts_with("crates/solver/src/fake.rs:3 float-reduction "),
        "unexpected record shape: {rendered}"
    );
    assert!(
        rendered.ends_with(')'),
        "suggestion must close the record: {rendered}"
    );
}

// ------------------------------------------------------------- serve routing

#[test]
fn serve_is_an_ordered_crate_with_the_usual_path_exemptions() {
    // Library code in crates/serve is held to the ordered-crate rules: the
    // fixture's HashMap use and bare float `.sum()` both fire.
    let lib = findings_at("crates/serve/src/fake.rs", "serve_ordered.rs", None);
    assert!(
        rules_only(&lib).contains(&RuleId::NondetIter),
        "serve lib code must trip nondet-iter: {lib:?}"
    );
    assert!(
        rules_only(&lib).contains(&RuleId::FloatReduction),
        "serve lib code must trip float-reduction: {lib:?}"
    );
    // …while its integration tests and the daemon/CLI binaries keep the
    // standard test-path exemption.
    for exempt in [
        "crates/serve/tests/fake.rs",
        "crates/serve/src/bin/mffv-serve.rs",
    ] {
        let f = findings_at(exempt, "serve_ordered.rs", None);
        assert!(
            !rules_only(&f).contains(&RuleId::NondetIter)
                && !rules_only(&f).contains(&RuleId::FloatReduction),
            "{exempt} should be exempt, got {f:?}"
        );
    }
}
