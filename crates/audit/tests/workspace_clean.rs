//! Meta-test: the live workspace must pass `mffv-audit --deny`, and a
//! deliberately injected violation must fail it.  This is the self-hosting
//! contract — the analyzer guards the repo that ships it.

use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/audit -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("audit crate sits two levels below the workspace root")
}

#[test]
fn live_workspace_is_clean_under_deny() {
    let root = workspace_root();
    let baseline = root.join("crates/audit/baseline.txt");
    let outcome = mffv_audit::run_audit(root, &baseline).expect("audit run");
    assert!(
        outcome.ratchet.new.is_empty(),
        "new findings beyond baseline:\n{}",
        outcome
            .ratchet
            .new
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        outcome.ratchet.stale.is_empty(),
        "stale baseline grants (shrink baseline.txt): {:?}",
        outcome.ratchet.stale
    );
    assert!(outcome.is_clean());
}

#[test]
fn injected_hashmap_iteration_in_solver_fails_the_audit() {
    let src = "use std::collections::HashMap;\n\
               pub fn order(m: &HashMap<u32, f64>) -> Vec<u32> {\n\
               \x20   m.keys().copied().collect()\n\
               }\n";
    let findings = mffv_audit::analyze_source("crates/solver/src/injected.rs", src, None);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == mffv_audit::rules::RuleId::NondetIter),
        "HashMap iteration in crates/solver must be flagged: {findings:?}"
    );
}

#[test]
fn injected_raw_sum_in_solver_fails_the_audit() {
    let src = "pub fn residual_norm(r: &[f64]) -> f64 {\n\
               \x20   r.iter().map(|x| x * x).sum::<f64>().sqrt()\n\
               }\n";
    let findings = mffv_audit::analyze_source("crates/solver/src/injected.rs", src, None);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == mffv_audit::rules::RuleId::FloatReduction),
        "raw .sum::<f64>() in crates/solver must be flagged: {findings:?}"
    );
}
