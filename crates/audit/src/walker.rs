//! A hand-rolled workspace file walker (std-only, no `walkdir`).
//!
//! Collects every `.rs` source the audit owns: the umbrella crate's `src/`,
//! `tests/`, and `examples/`, plus each member crate's `src/` tree.  Two
//! subtrees are deliberately outside the audit's jurisdiction:
//!
//! * `crates/shims/` — offline stand-ins for third-party dependencies
//!   (`criterion`, `proptest`); they model external code, not ours.
//! * `crates/audit/tests/fixtures/` — the rule fixtures *are* deliberate
//!   violations; scanning them would make the pass fail on its own tests.

use std::path::{Path, PathBuf};

/// Directories under the workspace root that are walked for `.rs` files.
const ROOTS: [&str; 4] = ["src", "tests", "examples", "crates"];

/// Path prefixes (workspace-relative, `/`-separated) excluded from the walk.
const EXCLUDED_PREFIXES: [&str; 3] = ["crates/shims/", "crates/audit/tests/fixtures/", "target/"];

/// Collect the workspace-relative paths of every auditable `.rs` file under
/// `workspace_root`, sorted for stable output.
pub fn collect_sources(workspace_root: &Path) -> std::io::Result<Vec<String>> {
    let mut files = Vec::new();
    for root in ROOTS {
        let dir = workspace_root.join(root);
        if dir.is_dir() {
            walk(workspace_root, &dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(workspace_root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    // Sort entries so traversal (and any I/O error ordering) is deterministic.
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let rel = rel_path(workspace_root, &path);
        if EXCLUDED_PREFIXES
            .iter()
            .any(|p| rel.starts_with(p) || format!("{rel}/").starts_with(p))
        {
            continue;
        }
        if path.is_dir() {
            walk(workspace_root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Workspace-relative `/`-separated path.
pub fn rel_path(workspace_root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(workspace_root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Find the workspace root by walking up from `start` to the first directory
/// whose `Cargo.toml` contains a `[workspace]` section.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
