//! The finding ratchet.
//!
//! `crates/audit/baseline.txt` records, per `(rule-id, file)`, how many
//! grandfathered findings existed when the pass was introduced.  The contract
//! is **zero growth**: a scan may never produce more findings for a pair than
//! the baseline grants, and when legacy sites are cleaned up the baseline must
//! shrink with them (a stale grant is itself a failure under `--deny`, so the
//! ratchet only ever turns one way).  Counts — not line numbers — are recorded
//! so unrelated edits that shift lines cannot churn the baseline.
//!
//! File format, one grant per line, sorted:
//!
//! ```text
//! <count> <rule-id> <workspace-relative-path>
//! ```

use crate::rules::{Finding, RuleId};
use std::collections::BTreeMap;

/// Grandfathered finding counts keyed by `(rule, file)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    pub grants: BTreeMap<(RuleId, String), usize>,
}

/// The outcome of comparing a scan against the baseline.
#[derive(Debug, Clone, Default)]
pub struct Ratchet {
    /// Findings in excess of their baseline grant — always a failure.
    pub new: Vec<Finding>,
    /// Findings covered by a grant — reported, but not a failure.
    pub grandfathered: Vec<Finding>,
    /// Grants larger than the live finding count — the baseline must shrink.
    pub stale: Vec<(RuleId, String, usize, usize)>,
}

impl Baseline {
    /// Parse the baseline file format.  Unknown rule ids and malformed lines
    /// are hard errors: a typo must not silently grant an allowance.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut grants = BTreeMap::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, ' ');
            let (count, rule, file) = match (parts.next(), parts.next(), parts.next()) {
                (Some(c), Some(r), Some(f)) => (c, r, f),
                _ => {
                    return Err(format!(
                        "baseline line {}: expected `<count> <rule-id> <path>`, got `{line}`",
                        i + 1
                    ))
                }
            };
            let count: usize = count
                .parse()
                .map_err(|_| format!("baseline line {}: bad count `{count}`", i + 1))?;
            let rule = RuleId::from_id(rule)
                .ok_or_else(|| format!("baseline line {}: unknown rule id `{rule}`", i + 1))?;
            grants.insert((rule, file.to_string()), count);
        }
        Ok(Baseline { grants })
    }

    /// Serialise back to the on-disk format.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# mffv-audit baseline — grandfathered finding counts, zero-growth ratchet.\n\
             # Regenerate (shrink only) with: cargo run -p mffv-audit -- --update-baseline\n",
        );
        for ((rule, file), count) in &self.grants {
            if *count > 0 {
                out.push_str(&format!("{count} {} {file}\n", rule.id()));
            }
        }
        out
    }

    /// Build the baseline that exactly covers `findings`.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut grants: BTreeMap<(RuleId, String), usize> = BTreeMap::new();
        for f in findings {
            *grants.entry((f.rule, f.file.clone())).or_insert(0) += 1;
        }
        Baseline { grants }
    }

    /// Split `findings` into new vs grandfathered and surface stale grants.
    pub fn ratchet(&self, findings: &[Finding]) -> Ratchet {
        let mut live: BTreeMap<(RuleId, String), Vec<&Finding>> = BTreeMap::new();
        for f in findings {
            live.entry((f.rule, f.file.clone())).or_default().push(f);
        }
        let mut out = Ratchet::default();
        for (key, group) in &live {
            let granted = self.grants.get(key).copied().unwrap_or(0);
            // Findings are sorted by line; the grant covers the first
            // `granted` of them, anything beyond is new growth.
            for (i, f) in group.iter().enumerate() {
                if i < granted {
                    out.grandfathered.push((*f).clone());
                } else {
                    out.new.push((*f).clone());
                }
            }
        }
        for (key, &granted) in &self.grants {
            let actual = live.get(key).map_or(0, Vec::len);
            if granted > actual {
                out.stale.push((key.0, key.1.clone(), granted, actual));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: usize, rule: RuleId) -> Finding {
        Finding {
            file: file.into(),
            line,
            rule,
            message: "m".into(),
            suggestion: "s".into(),
        }
    }

    #[test]
    fn parse_render_roundtrip() {
        let b = Baseline::parse("2 panic crates/x/src/lib.rs\n1 wall-clock src/a.rs\n").unwrap();
        assert_eq!(b.grants.len(), 2);
        let again = Baseline::parse(&b.render()).unwrap();
        assert_eq!(b, again);
    }

    #[test]
    fn unknown_rule_is_a_hard_error() {
        assert!(Baseline::parse("1 not-a-rule src/a.rs").is_err());
        assert!(Baseline::parse("x panic src/a.rs").is_err());
    }

    #[test]
    fn growth_is_new_coverage_is_grandfathered_shrink_is_stale() {
        let b = Baseline::parse("1 panic src/a.rs\n2 nondet-iter src/b.rs\n").unwrap();
        let findings = vec![
            finding("src/a.rs", 3, RuleId::Panic),
            finding("src/a.rs", 9, RuleId::Panic),
            finding("src/b.rs", 1, RuleId::NondetIter),
        ];
        let r = b.ratchet(&findings);
        assert_eq!(r.new.len(), 1);
        assert_eq!(r.new[0].line, 9);
        assert_eq!(r.grandfathered.len(), 2);
        assert_eq!(r.stale, vec![(RuleId::NondetIter, "src/b.rs".into(), 2, 1)]);
    }

    #[test]
    fn empty_baseline_makes_every_finding_new() {
        let b = Baseline::default();
        let r = b.ratchet(&[finding("src/a.rs", 1, RuleId::WallClock)]);
        assert_eq!(r.new.len(), 1);
        assert!(r.grandfathered.is_empty() && r.stale.is_empty());
    }
}
