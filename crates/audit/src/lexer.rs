//! A small line lexer for Rust sources.
//!
//! The rule patterns in [`crate::rules`] are plain substring matches, so the
//! lexer's one job is to make those matches *sound*: it splits every line into
//! the part that is **code** and the part that is **comment**, with string and
//! character literals blanked out of the code text.  `let s = "HashMap";` must
//! not trip the nondet-iter rule, while `// audit: allow(panic) — invariant: …`
//! annotations must be found even though they live in comments.
//!
//! The lexer is a hand-rolled character state machine covering the token shapes
//! that actually occur in this workspace: line comments, (nested) block
//! comments, string literals with escapes, raw strings `r"…"` / `r#"…"#`, byte
//! strings, char literals, and lifetimes (`'a` is *not* a char literal).  It
//! does not attempt macro expansion or full parsing — rules that need more
//! context (test regions, crate roots) get it from path conventions and the
//! `#[cfg(test)]` marker tracked here.

/// One source line, split into code and comment channels.
#[derive(Debug, Clone)]
pub struct ScannedLine {
    /// 1-based line number.
    pub number: usize,
    /// The line's code text with string/char literal *contents* blanked
    /// (delimiters are kept, so `.expect("msg")` scans as `.expect("")`).
    pub code: String,
    /// The line's comment text (line comments and any block-comment content
    /// that falls on this line), concatenated.
    pub comment: String,
    /// Whether the line sits at or below a `#[cfg(test)]` marker in this file.
    /// By workspace convention test modules close out their files, so
    /// everything from the marker down is treated as test code.
    pub in_test: bool,
}

/// A fully scanned source file.
#[derive(Debug, Clone)]
pub struct ScannedFile {
    /// Workspace-relative path with `/` separators (stable across platforms —
    /// findings and baselines sort and compare on this).
    pub rel_path: String,
    pub lines: Vec<ScannedLine>,
}

impl ScannedFile {
    /// Whether any code line contains `pattern` (used for whole-file checks
    /// such as the `#![forbid(unsafe_code)]` requirement).
    pub fn any_code_contains(&self, pattern: &str) -> bool {
        self.lines.iter().any(|l| l.code.contains(pattern))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    /// Block comments nest in Rust; the depth is tracked.
    BlockComment(u32),
    Str,
    /// Raw string with `n` hashes: terminated by `"` followed by `n` `#`s.
    RawStr(u32),
    CharLit,
}

/// Scan `source` into per-line code/comment channels.
pub fn scan_source(rel_path: &str, source: &str) -> ScannedFile {
    let mut lines = Vec::new();
    let mut state = State::Code;
    let mut in_test = false;

    for (idx, raw_line) in source.lines().enumerate() {
        let mut code = String::with_capacity(raw_line.len());
        let mut comment = String::new();
        // A line comment never spans lines; block comments and strings do.
        if state == State::LineComment {
            state = State::Code;
        }
        let chars: Vec<char> = raw_line.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match state {
                State::Code => match c {
                    '/' if next == Some('/') => {
                        state = State::LineComment;
                        comment.push_str(&raw_line[char_byte_offset(raw_line, i)..]);
                        break;
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment(1);
                        i += 2;
                    }
                    '"' => {
                        code.push('"');
                        state = State::Str;
                        i += 1;
                    }
                    'r' | 'b' if starts_raw_string(&chars, i) => {
                        // Consume the prefix (`r`, `br`, `rb`) and hashes up to
                        // the opening quote.
                        let mut j = i;
                        while j < chars.len() && (chars[j] == 'r' || chars[j] == 'b') {
                            code.push(chars[j]);
                            j += 1;
                        }
                        let mut hashes = 0u32;
                        while j < chars.len() && chars[j] == '#' {
                            code.push('#');
                            hashes += 1;
                            j += 1;
                        }
                        // `starts_raw_string` guarantees chars[j] == '"'.
                        code.push('"');
                        state = State::RawStr(hashes);
                        i = j + 1;
                    }
                    'b' if next == Some('"') => {
                        code.push('b');
                        code.push('"');
                        state = State::Str;
                        i += 2;
                    }
                    '\'' if is_char_literal(&chars, i) => {
                        code.push('\'');
                        state = State::CharLit;
                        i += 1;
                    }
                    _ => {
                        code.push(c);
                        i += 1;
                    }
                },
                // audit: allow(panic) — invariant: the LineComment arm `break`s out of the
                // char loop above and the state resets to Code at line start.
                State::LineComment => unreachable!("line comments consume the rest of the line"),
                State::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::BlockComment(depth - 1)
                        };
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        state = State::BlockComment(depth + 1);
                        i += 2;
                    } else {
                        comment.push(c);
                        i += 1;
                    }
                }
                State::Str => match c {
                    '\\' => i += 2,
                    '"' => {
                        code.push('"');
                        state = State::Code;
                        i += 1;
                    }
                    _ => i += 1,
                },
                State::RawStr(hashes) => {
                    if c == '"' && closes_raw_string(&chars, i, hashes) {
                        code.push('"');
                        for _ in 0..hashes {
                            code.push('#');
                        }
                        i += 1 + hashes as usize;
                        state = State::Code;
                    } else {
                        i += 1;
                    }
                }
                State::CharLit => match c {
                    '\\' => i += 2,
                    '\'' => {
                        code.push('\'');
                        state = State::Code;
                        i += 1;
                    }
                    _ => i += 1,
                },
            }
        }
        // Unterminated single-line states reset at end of line.
        if matches!(state, State::LineComment | State::CharLit) {
            state = State::Code;
        }
        if code.contains("cfg(test") {
            in_test = true;
        }
        lines.push(ScannedLine {
            number: idx + 1,
            code,
            comment,
            in_test,
        });
    }

    ScannedFile {
        rel_path: rel_path.to_string(),
        lines,
    }
}

/// Byte offset of the `i`-th char of `s` (lines are short; linear is fine).
fn char_byte_offset(s: &str, i: usize) -> usize {
    s.char_indices().nth(i).map(|(b, _)| b).unwrap_or(s.len())
}

/// Does a raw-string literal (`r"`, `r#"`, `br"`, `rb#"` …) start at `i`?
fn starts_raw_string(chars: &[char], i: usize) -> bool {
    let mut j = i;
    let mut saw_r = false;
    while j < chars.len() && (chars[j] == 'r' || chars[j] == 'b') {
        saw_r |= chars[j] == 'r';
        j += 1;
        if j - i > 2 {
            return false;
        }
    }
    if !saw_r {
        return false;
    }
    while j < chars.len() && chars[j] == '#' {
        j += 1;
    }
    // Only treat it as a raw string when `r`/`b` begin an identifier of their
    // own (not e.g. the tail of `var`): previous char must not be
    // identifier-ish.
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    chars.get(j) == Some(&'"')
}

/// Does the `"` at `i` close a raw string with `hashes` hashes?
fn closes_raw_string(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Distinguish a char literal from a lifetime: `'` starts a literal when the
/// quote closes within a couple of characters (`'x'`, `'\n'`, `'\''`) —
/// lifetimes (`'a`, `'static`) never close.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_contents_are_blanked() {
        let f = scan_source("x.rs", "let s = \"HashMap::new()\";");
        assert_eq!(f.lines[0].code, "let s = \"\";");
        assert!(!f.lines[0].code.contains("HashMap"));
    }

    #[test]
    fn line_comments_go_to_the_comment_channel() {
        let f = scan_source(
            "x.rs",
            "let x = 1; // audit: allow(panic) — invariant: fine",
        );
        assert_eq!(f.lines[0].code, "let x = 1; ");
        assert!(f.lines[0].comment.contains("audit: allow(panic)"));
    }

    #[test]
    fn block_comments_span_lines_and_nest() {
        let src = "a /* one /* two */ still */ b\n/* open\n .unwrap() inside\n*/ c";
        let f = scan_source("x.rs", src);
        assert_eq!(f.lines[0].code.trim(), "a  b");
        assert_eq!(f.lines[1].code, "");
        assert!(f.lines[2].comment.contains(".unwrap()"));
        assert_eq!(f.lines[3].code.trim(), "c");
    }

    #[test]
    fn raw_strings_with_hashes_are_blanked() {
        let f = scan_source("x.rs", "let s = r#\"Instant::now() \" inner\"#; y();");
        assert_eq!(f.lines[0].code, "let s = r#\"\"#; y();");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = scan_source("x.rs", "fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(f.lines[0].code.contains("&'a str"));
        let g = scan_source("x.rs", "let c = 'x'; let q = '\\''; g()");
        assert_eq!(g.lines[0].code, "let c = ''; let q = ''; g()");
    }

    #[test]
    fn cfg_test_marks_the_rest_of_the_file() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests { fn t() {} }";
        let f = scan_source("x.rs", src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[2].in_test);
    }

    #[test]
    fn cfg_test_in_a_string_does_not_mark_test_region() {
        let f = scan_source("x.rs", "let s = \"#[cfg(test)]\";\nf();");
        assert!(!f.lines[1].in_test);
    }
}
