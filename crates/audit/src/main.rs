#![forbid(unsafe_code)]
//! The `mffv-audit` command-line entry point.
//!
//! ```text
//! mffv-audit [--deny] [--update-baseline] [--root <dir>] [--baseline <file>] [--list-rules]
//! ```
//!
//! * default — print every finding (new, grandfathered, stale grants) and a
//!   summary; exit 0 unless the scan itself fails.
//! * `--deny` — additionally exit 1 when any *new* finding exists or the
//!   baseline has stale grants (the CI mode: zero growth, shrink-only
//!   baseline).
//! * `--update-baseline` — rewrite the baseline to exactly cover the current
//!   findings.  Refuses to grow any grant: the ratchet only turns one way
//!   even here.

use mffv_audit::baseline::Baseline;
use mffv_audit::{run_audit, walker};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    deny: bool,
    update_baseline: bool,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    list_rules: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        deny: false,
        update_baseline: false,
        root: None,
        baseline: None,
        list_rules: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => opts.deny = true,
            "--update-baseline" => opts.update_baseline = true,
            "--list-rules" => opts.list_rules = true,
            "--root" => opts.root = Some(args.next().ok_or("--root needs a path")?.into()),
            "--baseline" => {
                opts.baseline = Some(args.next().ok_or("--baseline needs a path")?.into())
            }
            "--help" | "-h" => {
                println!(
                    "mffv-audit [--deny] [--update-baseline] [--root <dir>] [--baseline <file>] [--list-rules]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("mffv-audit: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for rule in mffv_audit::rules::RuleId::ALL {
            println!("{}", rule.id());
        }
        return ExitCode::SUCCESS;
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let Some(root) = opts.root.or_else(|| walker::find_workspace_root(&cwd)) else {
        eprintln!("mffv-audit: no workspace root found (looked upward from {cwd:?}); pass --root");
        return ExitCode::from(2);
    };
    let baseline_path = opts
        .baseline
        .unwrap_or_else(|| root.join("crates/audit/baseline.txt"));

    let outcome = match run_audit(&root, &baseline_path) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("mffv-audit: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.update_baseline {
        let current = std::fs::read_to_string(&baseline_path)
            .ok()
            .and_then(|t| Baseline::parse(&t).ok())
            .unwrap_or_default();
        let fresh = Baseline::from_findings(&outcome.findings);
        for (key, count) in &fresh.grants {
            let granted = current.grants.get(key).copied().unwrap_or(0);
            if *count > granted {
                eprintln!(
                    "mffv-audit: refusing to grow baseline for {} {} ({granted} -> {count}); fix or annotate the new findings instead",
                    key.0.id(),
                    key.1
                );
                return ExitCode::FAILURE;
            }
        }
        if let Err(e) = std::fs::write(&baseline_path, fresh.render()) {
            eprintln!("mffv-audit: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "mffv-audit: baseline updated ({} grants)",
            fresh.grants.len()
        );
        return ExitCode::SUCCESS;
    }

    for f in &outcome.ratchet.grandfathered {
        println!("{f} [baselined]");
    }
    for f in &outcome.ratchet.new {
        println!("{f}");
    }
    for (rule, file, granted, actual) in &outcome.ratchet.stale {
        println!(
            "{file}:0 {} baseline grants {granted} but only {actual} remain (shrink the baseline: cargo run -p mffv-audit -- --update-baseline)",
            rule.id()
        );
    }
    println!(
        "mffv-audit: {} findings ({} new, {} baselined), {} stale baseline grants",
        outcome.findings.len(),
        outcome.ratchet.new.len(),
        outcome.ratchet.grandfathered.len(),
        outcome.ratchet.stale.len()
    );

    if opts.deny && !outcome.is_clean() {
        eprintln!("mffv-audit: failing (--deny): new findings or stale baseline grants present");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
