//! The rule catalog.
//!
//! Each rule machine-checks one source-level invariant behind the workspace's
//! runtime guarantees (bitwise-deterministic solves across thread counts,
//! bitwise golden fixtures, cross-backend differential bounds).  See
//! `AUDIT.md` at the workspace root for the full catalog: what each rule
//! protects, and how to annotate a justified exception.
//!
//! Exceptions are granted by an `audit: allow(<rule-id>) — <reason>` comment
//! on the offending line or on the immediately preceding comment line.  The
//! reason is mandatory; the `panic` rule additionally requires it to state the
//! `invariant:` that makes the site unreachable.

use crate::lexer::ScannedFile;

/// Stable rule identifiers — these appear in findings, annotations, and the
/// baseline file, so they must never change meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Hash-ordered containers in crates whose output must be
    /// submission-ordered / bitwise.
    NondetIter,
    /// Reassociating float reductions outside the blessed deterministic
    /// reduction homes.
    FloatReduction,
    /// `unwrap`/`expect`/`panic!`-family calls in library (non-test) paths.
    Panic,
    /// Missing `#![forbid(unsafe_code)]` on crate roots; unsafe blocks
    /// without a `SAFETY:` comment and an `UNSAFE_LEDGER.md` entry.
    Unsafe,
    /// Wall-clock reads outside `mffv-perf`, `mffv-telemetry` and the
    /// monitor/deadline module.
    WallClock,
    /// `Ordering::Relaxed` on atomics (cross-thread control flow must use
    /// acquire/release or stronger).
    AtomicsOrdering,
}

impl RuleId {
    pub const ALL: [RuleId; 6] = [
        RuleId::NondetIter,
        RuleId::FloatReduction,
        RuleId::Panic,
        RuleId::Unsafe,
        RuleId::WallClock,
        RuleId::AtomicsOrdering,
    ];

    /// The stable textual id used in findings, annotations, and baselines.
    pub fn id(self) -> &'static str {
        match self {
            RuleId::NondetIter => "nondet-iter",
            RuleId::FloatReduction => "float-reduction",
            RuleId::Panic => "panic",
            RuleId::Unsafe => "unsafe",
            RuleId::WallClock => "wall-clock",
            RuleId::AtomicsOrdering => "atomics-ordering",
        }
    }

    pub fn from_id(s: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.id() == s)
    }
}

/// One rule violation at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line (0 for whole-file findings such as a missing crate-root
    /// attribute).
    pub line: usize,
    pub rule: RuleId,
    pub message: String,
    pub suggestion: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{} {} {} ({})",
            self.file,
            self.line,
            self.rule.id(),
            self.message,
            self.suggestion
        )
    }
}

/// Crates whose reports/fixtures are contractually submission-ordered or
/// bitwise-reproducible: hash-ordered iteration and unblessed float
/// reductions are forbidden here (rules 1 and 2).
const ORDERED_CRATES: [&str; 8] = [
    "mffv",
    "mffv-engine",
    "mffv-solver",
    "mffv-fv",
    "mffv-mesh",
    "mffv-core",
    "mffv-telemetry",
    "mffv-serve",
];

/// Files that ARE the blessed deterministic-reduction implementations: the
/// float-reduction rule does not apply to the homes of
/// `fabric_ordered_dot`/`pairwise_sum` (`mffv_solver::reduction`),
/// `det_dot`/`det_norm_squared` (`mffv_fv::plan`), and the sequential-fold
/// helper itself (`mffv_mesh::reduce`).
const REDUCTION_HOMES: [&str; 3] = [
    "crates/solver/src/reduction.rs",
    "crates/fv/src/plan.rs",
    "crates/mesh/src/reduce.rs",
];

/// Modules allowed to read the wall clock: the perf crate exists to time
/// things, the telemetry crate is the blessed home for every other timing
/// read (`Stopwatch`, tracer epochs), and the monitor module implements
/// deadline stop policies.
const WALL_CLOCK_HOMES: [&str; 1] = ["crates/solver/src/monitor.rs"];

/// Per-file facts derived from the workspace-relative path.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Workspace crate the file belongs to (`mffv`, `mffv-solver`, …).
    pub crate_name: String,
    /// Whether this file is a crate root (`lib.rs`) that must carry
    /// `#![forbid(unsafe_code)]`.
    pub is_crate_root: bool,
    /// Whether the file is test/example/bench-only by path convention.
    pub is_test_path: bool,
}

impl FileContext {
    /// Classify a workspace-relative path.
    pub fn classify(rel_path: &str) -> FileContext {
        let crate_name = if let Some(rest) = rel_path.strip_prefix("crates/") {
            let dir = rest.split('/').next().unwrap_or("");
            format!("mffv-{dir}")
        } else {
            "mffv".to_string()
        };
        let is_crate_root = rel_path == "src/lib.rs"
            || (rel_path.starts_with("crates/") && rel_path.ends_with("/src/lib.rs"));
        let is_test_path = rel_path
            .split('/')
            .any(|seg| seg == "tests" || seg == "examples" || seg == "benches" || seg == "bin");
        FileContext {
            crate_name,
            is_crate_root,
            is_test_path,
        }
    }
}

/// Whether line `idx` of `file` carries (or inherits from the line above) an
/// `audit: allow(<rule>) — <reason>` annotation with a non-empty reason.
fn is_allowed(file: &ScannedFile, idx: usize, rule: RuleId) -> bool {
    let marker = format!("audit: allow({})", rule.id());
    let annotation = |comment: &str| -> bool {
        let Some(pos) = comment.find(&marker) else {
            return false;
        };
        let reason = comment[pos + marker.len()..]
            .trim_start_matches(|c: char| c.is_whitespace() || c == '—' || c == '-' || c == ':');
        if reason.trim().is_empty() {
            return false;
        }
        // The panic rule demands the justification name the invariant that
        // makes the site unreachable.
        rule != RuleId::Panic || reason.contains("invariant:")
    };
    if annotation(&file.lines[idx].comment) {
        return true;
    }
    // A standalone annotation in the contiguous block of comment-only lines
    // directly above the offending line (annotations may wrap).  Attribute
    // lines (e.g. the clippy mirrors' `#[allow(clippy::disallowed_methods)]`)
    // are transparent: the annotation may sit above them.
    let mut i = idx;
    while i > 0 {
        let above = &file.lines[i - 1];
        let code = above.code.trim();
        let is_attribute = code.starts_with("#[") || code.starts_with("#![");
        if !code.is_empty() && !is_attribute {
            break;
        }
        if !is_attribute && above.comment.is_empty() {
            break;
        }
        if annotation(&above.comment) {
            return true;
        }
        i -= 1;
    }
    false
}

/// Substring match that, for patterns beginning with an identifier character,
/// requires the character before the match to not itself be part of an
/// identifier (so `Ordering::Relaxed` does not match inside an invented
/// `MyOrdering::Relaxed`).  Patterns beginning with `.`/`#` are already
/// self-delimiting.
fn contains_token(code: &str, pattern: &str) -> bool {
    let ident_start = pattern
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    if !ident_start {
        return code.contains(pattern);
    }
    let mut start = 0;
    while let Some(pos) = code[start..].find(pattern) {
        let abs = start + pos;
        let boundary = abs == 0
            || !code[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if boundary {
            return true;
        }
        start = abs + pattern.len();
    }
    false
}

/// Run every rule over one scanned file.  `ledger` is the content of
/// `UNSAFE_LEDGER.md` if it exists at the workspace root.
pub fn check_file(file: &ScannedFile, ctx: &FileContext, ledger: Option<&str>) -> Vec<Finding> {
    let mut findings = Vec::new();
    rule_nondet_iter(file, ctx, &mut findings);
    rule_float_reduction(file, ctx, &mut findings);
    rule_panic(file, ctx, &mut findings);
    rule_unsafe(file, ctx, ledger, &mut findings);
    rule_wall_clock(file, ctx, &mut findings);
    rule_atomics_ordering(file, ctx, &mut findings);
    findings.sort();
    findings
}

/// Rule 1 — nondet-iter: `HashMap`/`HashSet` forbidden in library code of the
/// ordered crates.  Hash-seeded iteration order must never feed reports,
/// name assignment, or anything else a golden fixture can see.
fn rule_nondet_iter(file: &ScannedFile, ctx: &FileContext, out: &mut Vec<Finding>) {
    if !ORDERED_CRATES.contains(&ctx.crate_name.as_str()) || ctx.is_test_path {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for ty in ["HashMap", "HashSet"] {
            if contains_token(&line.code, ty) && !is_allowed(file, idx, RuleId::NondetIter) {
                out.push(Finding {
                    file: file.rel_path.clone(),
                    line: line.number,
                    rule: RuleId::NondetIter,
                    message: format!(
                        "{ty} in ordered crate `{}`: hash-seeded iteration order must not reach submission-ordered or bitwise output",
                        ctx.crate_name
                    ),
                    suggestion: format!(
                        "use BTree{} or annotate `audit: allow(nondet-iter) — <why order cannot leak>`",
                        &ty[4..]
                    ),
                });
            }
        }
    }
}

/// Rule 2 — float-reduction: `.sum::<f32/f64>()`, typed float `.sum()` /
/// `.product()`, and `fold(0.0, …)` reassociate under iterator fusion and
/// break the PR-4 slab-ordering contract.  All float reductions in ordered
/// crates must go through the blessed homes (`mffv_solver::reduction`,
/// `mffv_fv::plan::{det_dot, det_norm_squared}`, `mffv_mesh::reduce`).
fn rule_float_reduction(file: &ScannedFile, ctx: &FileContext, out: &mut Vec<Finding>) {
    if !ORDERED_CRATES.contains(&ctx.crate_name.as_str()) || ctx.is_test_path {
        return;
    }
    if REDUCTION_HOMES.contains(&file.rel_path.as_str()) {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        let turbofish = code.contains(".sum::<f32>")
            || code.contains(".sum::<f64>")
            || code.contains(".product::<f32>")
            || code.contains(".product::<f64>");
        // `let total: f64 = xs.iter().sum();` — untyped call site whose float
        // type is visible within the same (possibly wrapped) statement: walk
        // back while the preceding line does not end a statement or open a
        // block, so a binding's type annotation is seen but a neighbouring
        // function's `f64` is not.  A line lexer cannot do type inference;
        // see AUDIT.md for what this heuristic can and cannot catch.
        let mut stmt_start = idx;
        while stmt_start > 0 {
            let prev = file.lines[stmt_start - 1].code.trim_end();
            if prev.ends_with(';') || prev.ends_with('{') || prev.ends_with('}') {
                break;
            }
            stmt_start -= 1;
        }
        let window = file.lines[stmt_start..=idx]
            .iter()
            .map(|l| l.code.as_str())
            .collect::<Vec<_>>()
            .join("\n");
        let typed_line = (code.contains(".sum()") || code.contains(".product()"))
            && (contains_token(&window, "f32") || contains_token(&window, "f64"));
        let float_fold = code.contains(".fold(0.0") || code.contains(".fold(1.0");
        if (turbofish || typed_line || float_fold) && !is_allowed(file, idx, RuleId::FloatReduction)
        {
            out.push(Finding {
                file: file.rel_path.clone(),
                line: line.number,
                rule: RuleId::FloatReduction,
                message: "unblessed float reduction: iterator sums/folds reassociate and break the slab-ordering bitwise contract".into(),
                suggestion: "route through mffv_mesh::reduce::seq_sum / mffv_fv::det_dot, or annotate `audit: allow(float-reduction) — <reassociation-safe rationale>`".into(),
            });
        }
    }
}

/// Rule 3 — panic: `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/
/// `unimplemented!` in non-test library paths must either become proper error
/// returns or carry an `audit: allow(panic) — invariant:` justification.
/// (Assert macros are deliberately out of scope: they state preconditions.)
fn rule_panic(file: &ScannedFile, ctx: &FileContext, out: &mut Vec<Finding>) {
    if ctx.is_test_path {
        return;
    }
    const PATTERNS: [&str; 6] = [
        ".unwrap()",
        ".expect(",
        "panic!",
        "unreachable!",
        "todo!",
        "unimplemented!",
    ];
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for pat in PATTERNS {
            if contains_token(&line.code, pat) && !is_allowed(file, idx, RuleId::Panic) {
                out.push(Finding {
                    file: file.rel_path.clone(),
                    line: line.number,
                    rule: RuleId::Panic,
                    message: format!("`{pat}` in library path: a panicking solve takes down its worker, not just its job"),
                    suggestion: "return a SolveError/validation Result, or annotate `audit: allow(panic) — invariant: <why unreachable>`".into(),
                });
                break;
            }
        }
    }
}

/// Rule 4 — unsafe: every crate root must `#![forbid(unsafe_code)]`; any
/// future opt-out must pair each `unsafe` block with a `SAFETY:` comment and
/// register the file in `UNSAFE_LEDGER.md` at the workspace root.
fn rule_unsafe(
    file: &ScannedFile,
    ctx: &FileContext,
    ledger: Option<&str>,
    out: &mut Vec<Finding>,
) {
    if ctx.is_crate_root && !file.any_code_contains("#![forbid(unsafe_code)]") {
        out.push(Finding {
            file: file.rel_path.clone(),
            line: 0,
            rule: RuleId::Unsafe,
            message: "crate root missing `#![forbid(unsafe_code)]`".into(),
            suggestion: "add the attribute; unsafe code requires a SAFETY: comment and an UNSAFE_LEDGER.md entry".into(),
        });
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if !contains_token(&line.code, "unsafe ") && !contains_token(&line.code, "unsafe{") {
            continue;
        }
        // `forbid(unsafe_code)`/`deny(unsafe_code)` attribute lines are not
        // unsafe blocks.
        if line.code.contains("unsafe_code") {
            continue;
        }
        let has_safety_comment = line.comment.contains("SAFETY:")
            || (idx > 0 && file.lines[idx - 1].comment.contains("SAFETY:"));
        let in_ledger = ledger.is_some_and(|l| l.contains(&file.rel_path));
        if !has_safety_comment || !in_ledger {
            out.push(Finding {
                file: file.rel_path.clone(),
                line: line.number,
                rule: RuleId::Unsafe,
                message: "unsafe block without a `// SAFETY:` comment registered in UNSAFE_LEDGER.md".into(),
                suggestion: "document the safety argument on the preceding line and add the file to UNSAFE_LEDGER.md".into(),
            });
        }
    }
}

/// Rule 5 — wall-clock: `Instant::now`/`SystemTime` forbidden outside
/// `mffv-perf`, `mffv-telemetry` and the monitor/deadline module.
/// Elapsed-time *telemetry* belongs in `mffv-telemetry` (`Stopwatch`, span
/// clocks) so report latency fields need no per-line waivers; a wall-clock
/// read anywhere else either moves behind those types or explains itself —
/// one that feeds a numeric decision silently breaks run-to-run
/// reproducibility.
fn rule_wall_clock(file: &ScannedFile, ctx: &FileContext, out: &mut Vec<Finding>) {
    if ctx.crate_name == "mffv-perf"
        || ctx.crate_name == "mffv-telemetry"
        || WALL_CLOCK_HOMES.contains(&file.rel_path.as_str())
        || ctx.is_test_path
    {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if (contains_token(&line.code, "Instant::now") || contains_token(&line.code, "SystemTime"))
            && !is_allowed(file, idx, RuleId::WallClock)
        {
            out.push(Finding {
                file: file.rel_path.clone(),
                line: line.number,
                rule: RuleId::WallClock,
                message: "wall-clock read outside mffv-perf / mffv-telemetry / the monitor deadline module".into(),
                suggestion: "time through mffv_telemetry::Stopwatch (or move into mffv-perf), or annotate `audit: allow(wall-clock) — telemetry: <what it feeds>`".into(),
            });
        }
    }
}

/// Rule 6 — atomics-ordering: `Ordering::Relaxed` on a cross-thread
/// control-flow atomic (cancel token, queue shutdown flag) lets a stop signal
/// be observed arbitrarily late.  A static pass cannot prove which atomics
/// are control-flow, so every `Relaxed` needs a justification.
fn rule_atomics_ordering(file: &ScannedFile, ctx: &FileContext, out: &mut Vec<Finding>) {
    if ctx.is_test_path {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if contains_token(&line.code, "Ordering::Relaxed")
            && !is_allowed(file, idx, RuleId::AtomicsOrdering)
        {
            out.push(Finding {
                file: file.rel_path.clone(),
                line: line.number,
                rule: RuleId::AtomicsOrdering,
                message: "Ordering::Relaxed: a relaxed load/store on a control-flow atomic can delay cancellation/shutdown indefinitely".into(),
                suggestion: "use Acquire/Release (or SeqCst), or annotate `audit: allow(atomics-ordering) — <why not control-flow>`".into(),
            });
        }
    }
}
