#![forbid(unsafe_code)]
//! # mffv-audit
//!
//! A workspace determinism & soundness static-analysis pass.
//!
//! The repo's headline guarantees — bitwise-deterministic solves across
//! 1/2/8 threads, bitwise golden fixtures, cross-backend differential bounds —
//! are enforced at runtime by tests, but the *source-level* invariants that
//! make them true were unchecked convention until this crate: all float
//! reductions go through the slab-ordered deterministic kernels, no
//! hash-ordered iteration feeds reports or name assignment, no wall-clock
//! reads sit inside numeric decisions.  `mffv-audit` machine-checks those
//! invariants on every CI run with a six-rule catalog (see [`rules`] and
//! `AUDIT.md`) and a zero-growth baseline ratchet (see [`baseline`]).
//!
//! Run it as the CI does:
//!
//! ```text
//! cargo run -p mffv-audit -- --deny
//! ```
//!
//! Findings are stable, sorted `file:line rule-id message (suggestion)`
//! records, so diffs between runs are meaningful.

pub mod baseline;
pub mod lexer;
pub mod rules;
pub mod walker;

use baseline::{Baseline, Ratchet};
use rules::{check_file, FileContext, Finding};
use std::path::Path;

/// Analyze one source text as if it lived at `rel_path` in the workspace.
/// This is the seam the fixture self-tests drive: rule applicability is
/// derived from the pretend path, not from where the fixture file sits.
pub fn analyze_source(rel_path: &str, source: &str, ledger: Option<&str>) -> Vec<Finding> {
    let scanned = lexer::scan_source(rel_path, source);
    let ctx = FileContext::classify(rel_path);
    check_file(&scanned, &ctx, ledger)
}

/// Scan every auditable source under `workspace_root` and return the sorted
/// findings.
pub fn scan_workspace(workspace_root: &Path) -> std::io::Result<Vec<Finding>> {
    let ledger = std::fs::read_to_string(workspace_root.join("UNSAFE_LEDGER.md")).ok();
    let mut findings = Vec::new();
    for rel in walker::collect_sources(workspace_root)? {
        let source = std::fs::read_to_string(workspace_root.join(&rel))?;
        findings.extend(analyze_source(&rel, &source, ledger.as_deref()));
    }
    findings.sort();
    Ok(findings)
}

/// Outcome of a full audit run, ready for reporting and exit-code mapping.
pub struct AuditOutcome {
    pub findings: Vec<Finding>,
    pub ratchet: Ratchet,
}

impl AuditOutcome {
    /// Whether the run satisfies the zero-growth contract: no findings beyond
    /// the baseline, and no stale grants left to shrink.
    pub fn is_clean(&self) -> bool {
        self.ratchet.new.is_empty() && self.ratchet.stale.is_empty()
    }
}

/// Scan the workspace and apply the ratchet against the baseline at
/// `baseline_path` (a missing baseline file means an empty baseline).
pub fn run_audit(workspace_root: &Path, baseline_path: &Path) -> Result<AuditOutcome, String> {
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(text) => Baseline::parse(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
        Err(e) => return Err(format!("reading {}: {e}", baseline_path.display())),
    };
    let findings =
        scan_workspace(workspace_root).map_err(|e| format!("scanning workspace: {e}"))?;
    let ratchet = baseline.ratchet(&findings);
    Ok(AuditOutcome { findings, ratchet })
}
