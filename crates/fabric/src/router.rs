//! Per-PE routers: per-colour routes, switch positions and ring mode.
//!
//! The paper programs each router with two switch positions per colour and toggles
//! between them with control commands (Listing 1, Figure 4): position 0 makes the PE
//! the root of a broadcast (`rx = RAMP, tx = EAST`), position 1 makes it a receiver
//! (`rx = WEST, tx = RAMP`), and ring mode wraps the position counter so alternating
//! send/receive roles only ever need "advance" commands.

use crate::color::{Color, NUM_ROUTABLE_COLORS};
use crate::error::FabricError;
use crate::geometry::{PeId, Port};

/// One switch position of one colour: which incoming ports are accepted and which
/// outgoing ports the wavelet is forwarded to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouterRule {
    /// Accepted input ports.
    pub rx: Vec<Port>,
    /// Output ports the wavelet is replicated onto.
    pub tx: Vec<Port>,
}

impl RouterRule {
    /// Build a rule.
    pub fn new(rx: &[Port], tx: &[Port]) -> Self {
        Self {
            rx: rx.to_vec(),
            tx: tx.to_vec(),
        }
    }

    /// Whether a wavelet entering through `port` is accepted by this rule.
    pub fn accepts(&self, port: Port) -> bool {
        self.rx.contains(&port)
    }
}

/// The full per-colour configuration: an ordered list of switch positions, the ring
/// mode flag and the current position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SwitchConfig {
    positions: Vec<RouterRule>,
    ring_mode: bool,
    current: usize,
}

impl SwitchConfig {
    /// A configuration with a single, fixed position (no switching).
    pub fn fixed(rule: RouterRule) -> Self {
        Self {
            positions: vec![rule],
            ring_mode: false,
            current: 0,
        }
    }

    /// A configuration with multiple switch positions.
    pub fn switched(positions: Vec<RouterRule>, ring_mode: bool) -> Self {
        assert!(
            !positions.is_empty(),
            "at least one switch position is required"
        );
        Self {
            positions,
            ring_mode,
            current: 0,
        }
    }

    /// The paper's Listing-1 broadcast pattern towards `direction`:
    /// position 0 = sender (`rx = RAMP, tx = direction`),
    /// position 1 = receiver (`rx = opposite(direction), tx = RAMP`), ring mode on.
    pub fn listing1_broadcast(direction: Port) -> Self {
        assert!(
            direction != Port::Ramp,
            "broadcast direction must be a cardinal port"
        );
        Self::switched(
            vec![
                RouterRule::new(&[Port::Ramp], &[direction]),
                RouterRule::new(&[direction.entry_on_neighbor()], &[Port::Ramp]),
            ],
            true,
        )
    }

    /// Same as [`SwitchConfig::listing1_broadcast`] but starting in the receiver
    /// position (the even/odd PEs of Table I start in opposite roles).
    pub fn listing1_broadcast_receiver_first(direction: Port) -> Self {
        let mut cfg = Self::listing1_broadcast(direction);
        cfg.current = 1;
        cfg
    }

    /// The currently selected rule.
    pub fn current_rule(&self) -> &RouterRule {
        &self.positions[self.current]
    }

    /// The index of the current position.
    pub fn current_position(&self) -> usize {
        self.current
    }

    /// Advance to the next switch position.  With ring mode the position wraps
    /// around; without it, the position saturates at the last entry (matching the
    /// hardware behaviour of a non-ring switch chain).
    pub fn advance(&mut self) {
        if self.current + 1 < self.positions.len() {
            self.current += 1;
        } else if self.ring_mode {
            self.current = 0;
        }
    }

    /// Number of positions.
    pub fn num_positions(&self) -> usize {
        self.positions.len()
    }
}

/// The router of one PE: a per-colour table of switch configurations.
#[derive(Clone, Debug)]
pub struct Router {
    pe: PeId,
    configs: Vec<Option<SwitchConfig>>,
}

impl Router {
    /// A router with no colours configured.
    pub fn new(pe: PeId) -> Self {
        Self {
            pe,
            configs: vec![None; NUM_ROUTABLE_COLORS as usize],
        }
    }

    /// The PE this router belongs to.
    pub fn pe(&self) -> PeId {
        self.pe
    }

    /// Install (or replace) the configuration of a colour — the simulator's
    /// equivalent of CSL's `set_router_config`.
    pub fn set_color_config(&mut self, color: Color, config: SwitchConfig) {
        self.configs[color.index()] = Some(config);
    }

    /// The configuration of a colour, if programmed.
    pub fn color_config(&self, color: Color) -> Option<&SwitchConfig> {
        self.configs[color.index()].as_ref()
    }

    /// Advance the switch position of a colour (the effect of a control wavelet /
    /// `fabric_control` write).  Returns an error if the colour is not programmed.
    pub fn advance_switch(&mut self, color: Color) -> Result<(), FabricError> {
        match &mut self.configs[color.index()] {
            Some(cfg) => {
                cfg.advance();
                Ok(())
            }
            None => Err(FabricError::NoRouteConfigured { pe: self.pe, color }),
        }
    }

    /// Route a wavelet of `color` entering through `incoming`: returns the output
    /// ports it is forwarded to.  Errors if the colour is not programmed or the
    /// current switch position does not accept the incoming port.
    pub fn route(&self, color: Color, incoming: Port) -> Result<Vec<Port>, FabricError> {
        let cfg = self.configs[color.index()]
            .as_ref()
            .ok_or(FabricError::NoRouteConfigured { pe: self.pe, color })?;
        let rule = cfg.current_rule();
        if !rule.accepts(incoming) {
            return Err(FabricError::RouteRejected {
                pe: self.pe,
                color,
                incoming,
            });
        }
        Ok(rule.tx.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_config_routes_and_rejects() {
        let mut r = Router::new(PeId::new(0, 0));
        let c = Color::new(0);
        r.set_color_config(
            c,
            SwitchConfig::fixed(RouterRule::new(&[Port::Ramp], &[Port::East])),
        );
        assert_eq!(r.route(c, Port::Ramp).unwrap(), vec![Port::East]);
        assert!(matches!(
            r.route(c, Port::West),
            Err(FabricError::RouteRejected { .. })
        ));
        assert!(matches!(
            r.route(Color::new(1), Port::Ramp),
            Err(FabricError::NoRouteConfigured { .. })
        ));
    }

    #[test]
    fn listing1_pattern_alternates_sender_and_receiver() {
        let mut cfg = SwitchConfig::listing1_broadcast(Port::East);
        // Position 0: sender.
        assert!(cfg.current_rule().accepts(Port::Ramp));
        assert_eq!(cfg.current_rule().tx, vec![Port::East]);
        cfg.advance();
        // Position 1: receiver (wavelets from the West land on the ramp).
        assert!(cfg.current_rule().accepts(Port::West));
        assert_eq!(cfg.current_rule().tx, vec![Port::Ramp]);
        // Ring mode wraps back to the sender position.
        cfg.advance();
        assert_eq!(cfg.current_position(), 0);
    }

    #[test]
    fn receiver_first_variant_starts_at_position_one() {
        let cfg = SwitchConfig::listing1_broadcast_receiver_first(Port::North);
        assert_eq!(cfg.current_position(), 1);
        assert!(cfg.current_rule().accepts(Port::South));
    }

    #[test]
    fn non_ring_switch_saturates() {
        let mut cfg = SwitchConfig::switched(
            vec![
                RouterRule::new(&[Port::Ramp], &[Port::East]),
                RouterRule::new(&[Port::West], &[Port::Ramp]),
            ],
            false,
        );
        cfg.advance();
        cfg.advance();
        cfg.advance();
        assert_eq!(cfg.current_position(), 1);
    }

    #[test]
    fn advance_switch_via_router() {
        let mut r = Router::new(PeId::new(1, 1));
        let c = Color::new(2);
        r.set_color_config(c, SwitchConfig::listing1_broadcast(Port::South));
        assert_eq!(r.color_config(c).unwrap().current_position(), 0);
        r.advance_switch(c).unwrap();
        assert_eq!(r.color_config(c).unwrap().current_position(), 1);
        assert!(r.advance_switch(Color::new(9)).is_err());
    }

    #[test]
    #[should_panic]
    fn broadcast_towards_ramp_is_rejected() {
        let _ = SwitchConfig::listing1_broadcast(Port::Ramp);
    }
}
