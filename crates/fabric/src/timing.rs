//! Device-time cost model for the simulated wafer-scale fabric.
//!
//! The real CS-2 measures kernel time with hardware timestamp counters; the
//! simulator cannot, so device time is *modelled* from counted work using the
//! machine ceilings the paper itself publishes in its roofline analysis (Figure 6):
//! 1.785 PFLOP/s fp32 peak, 20 PB/s aggregate local-memory bandwidth and 3.3 PB/s
//! fabric bandwidth over the 750 × 994 usable fabric.  The model deliberately
//! mirrors the paper's own reasoning: per-PE time is the larger of the FLOP time and
//! the memory-traffic time (compute-bound kernels sit at the FLOP ceiling), fabric
//! transfers either overlap with compute (§III-E2) or serialise with it, and
//! long-range collectives add a per-hop latency term that grows with the fabric
//! diagonal — which is exactly why Algorithm 1 scales slightly worse than
//! Algorithm 2 in Table III.

use crate::geometry::FabricDims;
use crate::stats::OpCounters;

/// Machine description of a WSE-2-class device.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WseSpec {
    /// Usable fabric extents.
    pub fabric: FabricDims,
    /// Aggregate fp32 peak over the usable fabric, FLOP/s.
    pub peak_flops: f64,
    /// Aggregate local-memory bandwidth, bytes/s.
    pub memory_bandwidth: f64,
    /// Aggregate fabric (inter-PE) bandwidth, bytes/s.
    pub fabric_bandwidth: f64,
    /// Latency of one router hop, seconds.
    pub hop_latency: f64,
    /// Fixed per-kernel-launch overhead, seconds (task scheduling, colour
    /// activation).
    pub launch_overhead: f64,
}

impl WseSpec {
    /// The CS-2 configuration used throughout the paper's evaluation (§V, Figure 6).
    pub fn cs2() -> Self {
        Self {
            fabric: FabricDims::cs2(),
            peak_flops: 1.785e15,
            memory_bandwidth: 20.0e15,
            fabric_bandwidth: 3.3e15,
            // ~1 cycle per hop at ~1.1 GHz.
            hop_latency: 0.9e-9,
            launch_overhead: 2.0e-6,
        }
    }

    /// The same per-PE rates applied to a smaller active region of the fabric (weak
    /// scaling experiments use sub-rectangles of the full wafer).
    pub fn cs2_region(width: usize, height: usize) -> Self {
        let full = Self::cs2();
        let scale = (width * height) as f64 / full.fabric.num_pes() as f64;
        Self {
            fabric: FabricDims::new(width, height),
            peak_flops: full.peak_flops * scale,
            memory_bandwidth: full.memory_bandwidth * scale,
            fabric_bandwidth: full.fabric_bandwidth * scale,
            hop_latency: full.hop_latency,
            launch_overhead: full.launch_overhead,
        }
    }

    /// Per-PE fp32 peak, FLOP/s.
    pub fn per_pe_flops(&self) -> f64 {
        self.peak_flops / self.fabric.num_pes() as f64
    }

    /// Per-PE local-memory bandwidth, bytes/s.
    pub fn per_pe_memory_bandwidth(&self) -> f64 {
        self.memory_bandwidth / self.fabric.num_pes() as f64
    }

    /// Per-PE fabric bandwidth, bytes/s.
    pub fn per_pe_fabric_bandwidth(&self) -> f64 {
        self.fabric_bandwidth / self.fabric.num_pes() as f64
    }
}

/// How communication is assumed to interact with computation in the time model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverlapMode {
    /// Asynchronous sends overlap with compute (the paper's §III-E2 optimisation):
    /// device time is `max(compute, communication)` plus collective latency.
    Overlapped,
    /// Fully serialised communication: device time is `compute + communication`.
    Serialized,
}

/// The device-time model.
#[derive(Clone, Copy, Debug)]
pub struct DeviceTimeModel {
    spec: WseSpec,
}

/// A breakdown of modelled device time.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TimeBreakdown {
    /// Time attributable to floating-point work, s.
    pub compute_time: f64,
    /// Time attributable to local-memory traffic, s.
    pub memory_time: f64,
    /// Time attributable to fabric transfers (bandwidth term), s.
    pub fabric_time: f64,
    /// Time attributable to hop latency along the critical path, s.
    pub latency_time: f64,
    /// Total modelled device time, s.
    pub total: f64,
}

impl TimeBreakdown {
    /// Fraction of total time spent moving data (fabric bandwidth + latency), the
    /// quantity Table IV reports as "Data Movement".
    pub fn data_movement_fraction(&self) -> f64 {
        if self.total <= 0.0 {
            0.0
        } else {
            (self.fabric_time + self.latency_time) / self.total
        }
    }
}

impl DeviceTimeModel {
    /// A model over a machine spec.
    pub fn new(spec: WseSpec) -> Self {
        Self { spec }
    }

    /// The machine spec.
    pub fn spec(&self) -> &WseSpec {
        &self.spec
    }

    /// Model device time from the *per-PE maximum* counters (the slowest PE bounds a
    /// bulk-synchronous step), a critical-path hop count for collectives, and the
    /// overlap assumption.
    pub fn estimate(
        &self,
        max_per_pe: &OpCounters,
        critical_path_hops: usize,
        overlap: OverlapMode,
    ) -> TimeBreakdown {
        let compute_time = max_per_pe.flops as f64 / self.spec.per_pe_flops();
        let memory_time = max_per_pe.mem_bytes() as f64 / self.spec.per_pe_memory_bandwidth();
        let fabric_time = max_per_pe.fabric_bytes() as f64 / self.spec.per_pe_fabric_bandwidth();
        let latency_time = critical_path_hops as f64 * self.spec.hop_latency;

        // Within one PE, FLOPs and memory accesses are issued by the same core: the
        // slower of the two ceilings bounds the local step.
        let local = compute_time.max(memory_time);
        let comm = fabric_time + latency_time;
        let total = match overlap {
            OverlapMode::Overlapped => local.max(comm),
            OverlapMode::Serialized => local + comm,
        } + self.spec.launch_overhead;
        TimeBreakdown {
            compute_time,
            memory_time,
            fabric_time,
            latency_time,
            total,
        }
    }

    /// Achieved FLOP/s for a given total FLOP count (over all PEs) and a modelled
    /// time — the number plotted on the roofline (Figure 6 reports 1.217 PFLOP/s).
    pub fn achieved_flops(&self, total_flops: u64, time: f64) -> f64 {
        if time <= 0.0 {
            0.0
        } else {
            total_flops as f64 / time
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cs2_spec_matches_paper_ceilings() {
        let s = WseSpec::cs2();
        assert_eq!(s.fabric.num_pes(), 745_500);
        assert!((s.peak_flops - 1.785e15).abs() < 1e9);
        assert!((s.memory_bandwidth - 20.0e15).abs() < 1e9);
        assert!((s.fabric_bandwidth - 3.3e15).abs() < 1e9);
        // Per-PE peak ≈ 2.4 GFLOP/s.
        assert!((s.per_pe_flops() - 2.394e9).abs() / 2.394e9 < 0.01);
    }

    #[test]
    fn region_scaling_preserves_per_pe_rates() {
        let full = WseSpec::cs2();
        let region = WseSpec::cs2_region(200, 200);
        assert!((full.per_pe_flops() - region.per_pe_flops()).abs() < 1.0);
        assert!((full.per_pe_memory_bandwidth() - region.per_pe_memory_bandwidth()).abs() < 1.0);
        assert_eq!(region.fabric.num_pes(), 40_000);
    }

    #[test]
    fn compute_bound_kernel_is_limited_by_flops() {
        // Table V ratio: 96 FLOPs vs 268 × 4 B of memory traffic per cell is
        // compute-bound on the CS-2 (the paper's Figure 6 conclusion).
        let model = DeviceTimeModel::new(WseSpec::cs2());
        let per_cell = OpCounters {
            flops: 96,
            mem_load_bytes: 268 * 4,
            mem_store_bytes: 0,
            fabric_recv_wavelets: 8,
            fabric_sent_wavelets: 0,
        };
        let t = model.estimate(&per_cell, 0, OverlapMode::Overlapped);
        assert!(t.compute_time > t.memory_time);
        assert!(t.compute_time > t.fabric_time);
    }

    #[test]
    fn overlap_reduces_total_time() {
        let model = DeviceTimeModel::new(WseSpec::cs2());
        let counters = OpCounters {
            flops: 1_000_000,
            mem_load_bytes: 2_000_000,
            mem_store_bytes: 500_000,
            fabric_recv_wavelets: 100_000,
            fabric_sent_wavelets: 100_000,
        };
        let overlapped = model.estimate(&counters, 100, OverlapMode::Overlapped);
        let serialized = model.estimate(&counters, 100, OverlapMode::Serialized);
        assert!(overlapped.total < serialized.total);
        assert!(serialized.data_movement_fraction() > 0.0);
    }

    #[test]
    fn latency_grows_with_hops() {
        let model = DeviceTimeModel::new(WseSpec::cs2());
        let c = OpCounters {
            flops: 10,
            ..Default::default()
        };
        let near = model.estimate(&c, 10, OverlapMode::Serialized);
        let far = model.estimate(&c, 1000, OverlapMode::Serialized);
        assert!(far.total > near.total);
        assert!((far.latency_time - 1000.0 * WseSpec::cs2().hop_latency).abs() < 1e-12);
    }

    #[test]
    fn achieved_flops_division() {
        let model = DeviceTimeModel::new(WseSpec::cs2());
        assert_eq!(model.achieved_flops(1_000, 0.5), 2_000.0);
        assert_eq!(model.achieved_flops(1_000, 0.0), 0.0);
    }
}
