//! Colours: the routing/typing tags carried by every wavelet.
//!
//! "Links transfer data in 32-bit packets, each annotated with a color for routing
//! and indicating the type of a message" (§III).  The hardware provides a small,
//! fixed number of routable colours; the paper dedicates colours C1–C4 to the
//! cardinal exchange actions and C5–C12 to their completion callbacks (Table I).

use crate::error::FabricError;

/// Number of routable colours available to a program (the WSE-2 SDK exposes 24
/// user-routable colours).
pub const NUM_ROUTABLE_COLORS: u8 = 24;

/// A wavelet colour.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Color(u8);

impl Color {
    /// Create a colour; panics if the id exceeds the routable range (use
    /// [`ColorAllocator`] to avoid manual bookkeeping).
    pub fn new(id: u8) -> Self {
        assert!(
            id < NUM_ROUTABLE_COLORS,
            "colour id {id} exceeds routable range"
        );
        Self(id)
    }

    /// Raw id.
    pub fn id(self) -> u8 {
        self.0
    }

    /// Index usable for dense per-colour tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Color {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Hands out colours sequentially, mirroring how a CSL program declares its colour
/// set up front.
#[derive(Clone, Debug, Default)]
pub struct ColorAllocator {
    next: u8,
}

impl ColorAllocator {
    /// A fresh allocator.
    pub fn new() -> Self {
        Self { next: 0 }
    }

    /// Allocate the next free colour.
    pub fn allocate(&mut self) -> Result<Color, FabricError> {
        if self.next >= NUM_ROUTABLE_COLORS {
            return Err(FabricError::InvalidBuffer {
                detail: format!("out of routable colours (limit {NUM_ROUTABLE_COLORS})"),
            });
        }
        let c = Color(self.next);
        self.next += 1;
        Ok(c)
    }

    /// Allocate `n` colours at once.
    pub fn allocate_many(&mut self, n: usize) -> Result<Vec<Color>, FabricError> {
        (0..n).map(|_| self.allocate()).collect()
    }

    /// Number of colours already allocated.
    pub fn allocated(&self) -> usize {
        self.next as usize
    }
}

/// The colour roles used by the paper's communication schedule (Table I) and
/// all-reduce.  Provided here so `mffv-core` and tests share one naming.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PaperColors {
    /// C1, C2: action colours for the X-dimension exchange.
    pub x_actions: [Color; 2],
    /// C3, C4: action colours for the Y-dimension exchange.
    pub y_actions: [Color; 2],
    /// C5–C12: completion-callback colours (east-send, west-recv, north-send,
    /// south-recv, west-send, east-recv, south-send, north-recv).
    pub callbacks: [Color; 8],
    /// Colours used by the whole-fabric all-reduce (row reduce, column reduce,
    /// column broadcast, row broadcast).
    pub allreduce: [Color; 4],
}

impl PaperColors {
    /// Allocate the full paper colour set from a fresh allocator.
    pub fn allocate(alloc: &mut ColorAllocator) -> Result<Self, FabricError> {
        Ok(Self {
            x_actions: [alloc.allocate()?, alloc.allocate()?],
            y_actions: [alloc.allocate()?, alloc.allocate()?],
            callbacks: [
                alloc.allocate()?,
                alloc.allocate()?,
                alloc.allocate()?,
                alloc.allocate()?,
                alloc.allocate()?,
                alloc.allocate()?,
                alloc.allocate()?,
                alloc.allocate()?,
            ],
            allreduce: [
                alloc.allocate()?,
                alloc.allocate()?,
                alloc.allocate()?,
                alloc.allocate()?,
            ],
        })
    }

    /// Total number of colours the schedule consumes.
    pub fn total(&self) -> usize {
        2 + 2 + 8 + 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn color_ids_and_display() {
        let c = Color::new(3);
        assert_eq!(c.id(), 3);
        assert_eq!(c.index(), 3);
        assert_eq!(c.to_string(), "C3");
    }

    #[test]
    #[should_panic]
    fn out_of_range_color_rejected() {
        let _ = Color::new(NUM_ROUTABLE_COLORS);
    }

    #[test]
    fn allocator_hands_out_unique_colors_until_exhausted() {
        let mut alloc = ColorAllocator::new();
        let colors = alloc.allocate_many(NUM_ROUTABLE_COLORS as usize).unwrap();
        assert_eq!(colors.len(), 24);
        let mut ids: Vec<u8> = colors.iter().map(|c| c.id()).collect();
        ids.dedup();
        assert_eq!(ids.len(), 24);
        assert!(alloc.allocate().is_err());
    }

    #[test]
    fn paper_color_set_fits_in_the_routable_budget() {
        let mut alloc = ColorAllocator::new();
        let set = PaperColors::allocate(&mut alloc).unwrap();
        assert_eq!(set.total(), 16);
        assert_eq!(alloc.allocated(), 16);
        assert!(alloc.allocated() <= NUM_ROUTABLE_COLORS as usize);
        // Distinct roles must use distinct colours.
        assert_ne!(set.x_actions[0], set.y_actions[0]);
        assert_ne!(set.callbacks[0], set.allreduce[0]);
    }
}
