//! Fabric topology: PE coordinates, ports and neighbour arithmetic.
//!
//! The WSE "employs a 2D Cartesian mesh fabric to connect PEs.  … A PE's router
//! manages five full-duplex links: a Ramp link that carries data between the PE and
//! its router, while North, East, South, and West links connect a router to
//! neighboring routers" (§III, Figure 2).

/// Extents of the fabric (number of PEs along each axis).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FabricDims {
    pub width: usize,
    pub height: usize,
}

/// Coordinates of a processing element on the fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeId {
    pub x: usize,
    pub y: usize,
}

/// One of the five router links.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Port {
    /// The link between a router and its own PE.
    Ramp,
    North,
    East,
    South,
    West,
}

impl FabricDims {
    /// Construct fabric extents; panics on zero sizes.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "fabric extents must be non-zero");
        Self { width, height }
    }

    /// The full CS-2 fabric usable by the SDK ("the grid size is 750 × 994", §V-A).
    pub fn cs2() -> Self {
        Self {
            width: 750,
            height: 994,
        }
    }

    /// Number of PEs.
    pub fn num_pes(&self) -> usize {
        self.width * self.height
    }

    /// Whether a coordinate is on the fabric.
    pub fn contains(&self, pe: PeId) -> bool {
        pe.x < self.width && pe.y < self.height
    }

    /// Linear index of a PE (row-major).
    #[inline]
    pub fn linear(&self, pe: PeId) -> usize {
        debug_assert!(self.contains(pe));
        pe.y * self.width + pe.x
    }

    /// Inverse of [`FabricDims::linear`].
    #[inline]
    pub fn unlinear(&self, idx: usize) -> PeId {
        debug_assert!(idx < self.num_pes());
        PeId {
            x: idx % self.width,
            y: idx / self.width,
        }
    }

    /// The neighbouring PE reached through an outgoing router port, if any.
    ///
    /// The fabric's Y axis grows southwards in router terms: the paper's Table I
    /// sends "to North" towards smaller `y` ("its northbound neighbor at cell
    /// (x, y−1, z)", §III-B).
    pub fn neighbor(&self, pe: PeId, port: Port) -> Option<PeId> {
        let (x, y) = (pe.x as isize, pe.y as isize);
        let (nx, ny) = match port {
            Port::Ramp => return Some(pe),
            Port::East => (x + 1, y),
            Port::West => (x - 1, y),
            Port::North => (x, y - 1),
            Port::South => (x, y + 1),
        };
        if nx < 0 || ny < 0 || nx >= self.width as isize || ny >= self.height as isize {
            None
        } else {
            Some(PeId {
                x: nx as usize,
                y: ny as usize,
            })
        }
    }

    /// Iterate over all PEs in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = PeId> + '_ {
        let (w, h) = (self.width, self.height);
        (0..h).flat_map(move |y| (0..w).map(move |x| PeId { x, y }))
    }

    /// Manhattan distance between two PEs — the hop count of a dimension-ordered
    /// route, used by the timing model for reduction/broadcast latencies.
    pub fn manhattan(&self, a: PeId, b: PeId) -> usize {
        a.x.abs_diff(b.x) + a.y.abs_diff(b.y)
    }
}

impl PeId {
    /// Construct a PE coordinate.
    pub const fn new(x: usize, y: usize) -> Self {
        Self { x, y }
    }
}

impl Port {
    /// All four fabric-facing ports (excludes the ramp).
    pub const CARDINAL: [Port; 4] = [Port::North, Port::East, Port::South, Port::West];

    /// The port on the *receiving* router that a wavelet leaving through `self`
    /// arrives on (East ↔ West, North ↔ South).
    pub fn entry_on_neighbor(self) -> Port {
        match self {
            Port::Ramp => Port::Ramp,
            Port::East => Port::West,
            Port::West => Port::East,
            Port::North => Port::South,
            Port::South => Port::North,
        }
    }
}

impl std::fmt::Display for PeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cs2_fabric_size_matches_paper() {
        let d = FabricDims::cs2();
        assert_eq!(d.num_pes(), 750 * 994);
    }

    #[test]
    fn linear_round_trip() {
        let d = FabricDims::new(5, 3);
        for idx in 0..d.num_pes() {
            assert_eq!(d.linear(d.unlinear(idx)), idx);
        }
        assert_eq!(d.linear(PeId::new(2, 1)), 7);
    }

    #[test]
    fn neighbors_respect_edges_and_orientation() {
        let d = FabricDims::new(3, 3);
        let c = PeId::new(1, 1);
        assert_eq!(d.neighbor(c, Port::East), Some(PeId::new(2, 1)));
        assert_eq!(d.neighbor(c, Port::West), Some(PeId::new(0, 1)));
        assert_eq!(d.neighbor(c, Port::North), Some(PeId::new(1, 0)));
        assert_eq!(d.neighbor(c, Port::South), Some(PeId::new(1, 2)));
        assert_eq!(d.neighbor(PeId::new(0, 0), Port::West), None);
        assert_eq!(d.neighbor(PeId::new(0, 0), Port::North), None);
        assert_eq!(d.neighbor(PeId::new(2, 2), Port::East), None);
        assert_eq!(d.neighbor(PeId::new(2, 2), Port::South), None);
        assert_eq!(d.neighbor(c, Port::Ramp), Some(c));
    }

    #[test]
    fn port_entry_mapping_is_involutive_on_cardinals() {
        for p in Port::CARDINAL {
            assert_eq!(p.entry_on_neighbor().entry_on_neighbor(), p);
        }
        assert_eq!(Port::Ramp.entry_on_neighbor(), Port::Ramp);
    }

    #[test]
    fn manhattan_distance() {
        let d = FabricDims::new(10, 10);
        assert_eq!(d.manhattan(PeId::new(0, 0), PeId::new(3, 4)), 7);
        assert_eq!(d.manhattan(PeId::new(5, 5), PeId::new(5, 5)), 0);
    }

    #[test]
    #[should_panic]
    fn zero_fabric_rejected() {
        let _ = FabricDims::new(0, 3);
    }
}
