//! Data Structure Descriptors (DSDs).
//!
//! "In the Cerebras architecture, this functionality is achieved through special
//! registers known as Data Structure Descriptors (DSDs), which serve as vectors upon
//! which specific instructions can operate.  The DSDs contain information regarding
//! the address, length, and stride of the arrays" (§III-E3).  A [`Dsd`] is exactly
//! that: a (buffer, offset, length, stride) view into a PE's local memory, consumed
//! by the vectorised instructions implemented on
//! [`crate::pe::ProcessingElement`].

use crate::error::FabricError;
use crate::memory::{BufferId, PeMemory};

/// A strided view into a PE-local buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Dsd {
    /// The buffer the view refers to.
    pub buffer: BufferId,
    /// Index of the first element.
    pub offset: usize,
    /// Number of elements the view covers.
    pub len: usize,
    /// Distance (in elements) between consecutive view elements.
    pub stride: usize,
}

impl Dsd {
    /// A dense view of `len` elements starting at `offset`.
    pub fn new(buffer: BufferId, offset: usize, len: usize) -> Self {
        Self {
            buffer,
            offset,
            len,
            stride: 1,
        }
    }

    /// A strided view.
    pub fn strided(buffer: BufferId, offset: usize, len: usize, stride: usize) -> Self {
        assert!(stride >= 1, "stride must be at least 1");
        Self {
            buffer,
            offset,
            len,
            stride,
        }
    }

    /// A dense view covering a whole buffer of known length.
    pub fn full(buffer: BufferId, len: usize) -> Self {
        Self::new(buffer, 0, len)
    }

    /// The element indices the view touches, in order.
    pub fn indices(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).map(move |i| self.offset + i * self.stride)
    }

    /// Index of the last element touched (if any).
    pub fn last_index(&self) -> Option<usize> {
        if self.len == 0 {
            None
        } else {
            Some(self.offset + (self.len - 1) * self.stride)
        }
    }

    /// Validate the view against the memory it refers to.
    pub fn validate(&self, memory: &PeMemory) -> Result<(), FabricError> {
        let buf_len = memory.len(self.buffer)?;
        if let Some(last) = self.last_index() {
            if last >= buf_len {
                return Err(FabricError::DsdOutOfRange {
                    detail: format!(
                        "DSD covers index {last} but buffer '{}' has {buf_len} elements",
                        memory.name(self.buffer).unwrap_or("?")
                    ),
                });
            }
        }
        Ok(())
    }

    /// Gather the view's values into a vector (counts as `len` loads in the caller's
    /// accounting; the gather itself is a simulator convenience).
    pub fn gather(&self, memory: &PeMemory) -> Result<Vec<f32>, FabricError> {
        self.validate(memory)?;
        let data = memory.slice(self.buffer)?;
        Ok(self.indices().map(|i| data[i]).collect())
    }

    /// Scatter values into the view (the inverse of [`Dsd::gather`]).
    pub fn scatter(&self, memory: &mut PeMemory, values: &[f32]) -> Result<(), FabricError> {
        if values.len() != self.len {
            return Err(FabricError::DsdOutOfRange {
                detail: format!(
                    "scatter of {} values into a DSD of length {}",
                    values.len(),
                    self.len
                ),
            });
        }
        self.validate(memory)?;
        let data = memory.slice_mut(self.buffer)?;
        for (i, &v) in self.indices().zip(values.iter()) {
            data[i] = v;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::PeId;

    fn memory_with_buffer(len: usize) -> (PeMemory, BufferId) {
        let mut m = PeMemory::with_capacity(PeId::new(0, 0), 4096, 64);
        let b = m.alloc("buf", len).unwrap();
        (m, b)
    }

    #[test]
    fn dense_view_round_trip() {
        let (mut m, b) = memory_with_buffer(8);
        let view = Dsd::full(b, 8);
        view.scatter(&mut m, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0])
            .unwrap();
        assert_eq!(
            view.gather(&m).unwrap(),
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]
        );
    }

    #[test]
    fn strided_view_touches_every_other_element() {
        let (mut m, b) = memory_with_buffer(8);
        m.write(b, 0, &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0])
            .unwrap();
        let view = Dsd::strided(b, 1, 3, 2);
        assert_eq!(view.gather(&m).unwrap(), vec![1.0, 3.0, 5.0]);
        assert_eq!(view.last_index(), Some(5));
        view.scatter(&mut m, &[10.0, 30.0, 50.0]).unwrap();
        assert_eq!(
            m.read(b, 0, 8).unwrap(),
            vec![0.0, 10.0, 2.0, 30.0, 4.0, 50.0, 6.0, 7.0]
        );
    }

    #[test]
    fn out_of_range_view_rejected() {
        let (m, b) = memory_with_buffer(4);
        let view = Dsd::new(b, 2, 3);
        assert!(view.validate(&m).is_err());
        assert!(view.gather(&m).is_err());
    }

    #[test]
    fn empty_view_is_valid() {
        let (m, b) = memory_with_buffer(4);
        let view = Dsd::new(b, 0, 0);
        assert!(view.validate(&m).is_ok());
        assert_eq!(view.last_index(), None);
        assert_eq!(view.gather(&m).unwrap(), Vec::<f32>::new());
    }

    #[test]
    fn scatter_length_mismatch_rejected() {
        let (mut m, b) = memory_with_buffer(4);
        let view = Dsd::new(b, 0, 2);
        assert!(view.scatter(&mut m, &[1.0]).is_err());
    }

    #[test]
    #[should_panic]
    fn zero_stride_rejected() {
        let (_, b) = memory_with_buffer(4);
        let _ = Dsd::strided(b, 0, 2, 0);
    }
}
