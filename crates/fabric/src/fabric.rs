//! The fabric: a 2-D mesh of PEs connected by routers, with message routing and
//! traffic accounting.
//!
//! A send starts at the source PE's ramp, follows the per-colour router
//! configuration hop by hop (replicating onto every `tx` port of the current switch
//! position, exactly like the hardware's broadcast trees), and is delivered to the
//! mailbox of every PE whose router forwards the wavelets to its ramp.  Every link
//! crossing is counted so the device-time model and the Table-IV style
//! communication/computation split can be derived from *measured* traffic.

use crate::color::Color;
use crate::error::FabricError;
use crate::geometry::{FabricDims, PeId, Port};
use crate::pe::ProcessingElement;
use crate::router::SwitchConfig;
use crate::stats::{FabricStats, OpCounters};

/// Outcome of a single routed send.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SendReport {
    /// Number of PEs the payload was delivered to.
    pub deliveries: usize,
    /// Number of links the message crossed in total (including replication).
    pub links_crossed: usize,
    /// Depth (in links) of the deepest delivery — the latency-critical hop count.
    pub max_depth: usize,
}

/// The simulated dataflow fabric.
#[derive(Clone, Debug)]
pub struct Fabric {
    dims: FabricDims,
    pes: Vec<ProcessingElement>,
    stats: FabricStats,
}

impl Fabric {
    /// A fabric of `dims.width × dims.height` PEs with default 48 KiB memories.
    pub fn new(dims: FabricDims) -> Self {
        let pes = dims.iter().map(ProcessingElement::new).collect();
        Self {
            dims,
            pes,
            stats: FabricStats::default(),
        }
    }

    /// Fabric extents.
    pub fn dims(&self) -> FabricDims {
        self.dims
    }

    /// Number of PEs.
    pub fn num_pes(&self) -> usize {
        self.pes.len()
    }

    /// Immutable access to a PE.
    pub fn pe(&self, id: PeId) -> &ProcessingElement {
        assert!(self.dims.contains(id), "PE {id} outside fabric");
        &self.pes[self.dims.linear(id)]
    }

    /// Mutable access to a PE.
    pub fn pe_mut(&mut self, id: PeId) -> &mut ProcessingElement {
        assert!(self.dims.contains(id), "PE {id} outside fabric");
        let idx = self.dims.linear(id);
        &mut self.pes[idx]
    }

    /// Iterate over all PEs.
    pub fn iter_pes(&self) -> impl Iterator<Item = &ProcessingElement> {
        self.pes.iter()
    }

    /// Fabric-wide traffic statistics.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// Reset fabric traffic statistics and every PE's compute counters.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        for pe in &mut self.pes {
            pe.reset_counters();
        }
    }

    /// Sum of all PE compute counters.
    pub fn total_compute(&self) -> OpCounters {
        self.pes
            .iter()
            .fold(OpCounters::default(), |acc, pe| acc.merged(pe.counters()))
    }

    /// Maximum per-PE counters (element-wise) — the quantity that bounds device time
    /// on a bulk-synchronous fabric where every PE runs the same program.
    pub fn max_per_pe_compute(&self) -> OpCounters {
        let mut max = OpCounters::default();
        for pe in &self.pes {
            let c = pe.counters();
            max.flops = max.flops.max(c.flops);
            max.mem_load_bytes = max.mem_load_bytes.max(c.mem_load_bytes);
            max.mem_store_bytes = max.mem_store_bytes.max(c.mem_store_bytes);
            max.fabric_recv_wavelets = max.fabric_recv_wavelets.max(c.fabric_recv_wavelets);
            max.fabric_sent_wavelets = max.fabric_sent_wavelets.max(c.fabric_sent_wavelets);
        }
        max
    }

    /// Program one colour of one PE's router (CSL `set_router_config`).
    pub fn set_color_config(&mut self, pe: PeId, color: Color, config: SwitchConfig) {
        self.pe_mut(pe).router_mut().set_color_config(color, config);
    }

    /// Program one colour on every PE, with a per-PE configuration function — the
    /// usual way the layout programs even/odd roles (Table I).
    pub fn set_color_config_all(
        &mut self,
        color: Color,
        mut config_for: impl FnMut(PeId) -> SwitchConfig,
    ) {
        for idx in 0..self.pes.len() {
            let id = self.dims.unlinear(idx);
            self.pes[idx]
                .router_mut()
                .set_color_config(color, config_for(id));
        }
    }

    /// Advance the switch position of a colour at one PE.
    pub fn advance_switch(&mut self, pe: PeId, color: Color) -> Result<(), FabricError> {
        self.pe_mut(pe).router_mut().advance_switch(color)?;
        self.stats.control_advances += 1;
        Ok(())
    }

    /// Advance the switch position of a colour at several PEs (the paper's control
    /// command that flips a sender and its neighbouring receivers between roles).
    pub fn advance_switch_at(&mut self, pes: &[PeId], color: Color) -> Result<(), FabricError> {
        for &pe in pes {
            self.advance_switch(pe, color)?;
        }
        Ok(())
    }

    /// Inject a payload into the fabric from `src` under `color` and follow the
    /// routers until every copy lands on a ramp.  Returns a [`SendReport`].
    ///
    /// Errors surface communication-schedule bugs: un-programmed colours, switch
    /// positions that reject the incoming port, routes that fall off the fabric, or
    /// routing loops.
    pub fn send(
        &mut self,
        src: PeId,
        color: Color,
        payload: &[f32],
    ) -> Result<SendReport, FabricError> {
        if !self.dims.contains(src) {
            return Err(FabricError::PeOutOfBounds {
                pe: src,
                width: self.dims.width,
                height: self.dims.height,
            });
        }
        let hop_budget = 4 * self.dims.num_pes() + 8;
        let mut report = SendReport::default();
        // (PE, incoming port, depth in links from the source ramp)
        let mut frontier: Vec<(PeId, Port, usize)> = vec![(src, Port::Ramp, 0)];
        let mut processed = 0usize;

        self.pe_mut(src).counters_mut().fabric_sent_wavelets += payload.len() as u64;
        self.stats.messages_sent += 1;

        while let Some((pe, incoming, depth)) = frontier.pop() {
            processed += 1;
            if processed > hop_budget {
                return Err(FabricError::RoutingLoop {
                    color,
                    hops: processed,
                });
            }
            let outputs = self.pe(pe).router().route(color, incoming)?;
            for out in outputs {
                match out {
                    Port::Ramp => {
                        // Avoid delivering the message back onto the source ramp when
                        // the source itself is in a receive switch position for other
                        // traffic: the source's ramp is the origin, not a target.
                        if pe == src && incoming == Port::Ramp {
                            continue;
                        }
                        self.pe_mut(pe).deliver(color, payload.to_vec());
                        self.stats.deliveries += 1;
                        report.deliveries += 1;
                        report.max_depth = report.max_depth.max(depth);
                    }
                    port => {
                        let Some(neighbor) = self.dims.neighbor(pe, port) else {
                            return Err(FabricError::RoutedOffFabric {
                                pe,
                                color,
                                outgoing: port,
                            });
                        };
                        self.stats.link_crossings += 1;
                        self.stats.wavelet_hops += payload.len() as u64;
                        self.stats.link_bytes += payload.len() as u64 * 4;
                        report.links_crossed += 1;
                        frontier.push((neighbor, port.entry_on_neighbor(), depth + 1));
                    }
                }
            }
        }
        self.stats.max_route_depth = self.stats.max_route_depth.max(report.max_depth as u64);
        Ok(report)
    }

    /// Convenience: program a one-hop unicast route from `src` towards `port` for
    /// `color` (sender forwards ramp → port, receiver forwards the incoming link →
    /// ramp), without touching other PEs.
    pub fn program_unicast(
        &mut self,
        src: PeId,
        port: Port,
        color: Color,
    ) -> Result<(), FabricError> {
        let Some(dst) = self.dims.neighbor(src, port) else {
            return Err(FabricError::RoutedOffFabric {
                pe: src,
                color,
                outgoing: port,
            });
        };
        self.set_color_config(
            src,
            color,
            SwitchConfig::fixed(crate::router::RouterRule::new(&[Port::Ramp], &[port])),
        );
        self.set_color_config(
            dst,
            color,
            SwitchConfig::fixed(crate::router::RouterRule::new(
                &[port.entry_on_neighbor()],
                &[Port::Ramp],
            )),
        );
        Ok(())
    }

    /// Pop the oldest message of a colour at a PE.
    pub fn take_message(&mut self, pe: PeId, color: Color) -> Result<Vec<f32>, FabricError> {
        self.pe_mut(pe).take_message(color)
    }

    /// Number of messages pending at a PE for a colour.
    pub fn pending(&self, pe: PeId, color: Color) -> usize {
        self.pe(pe).pending(color)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{RouterRule, SwitchConfig};

    #[test]
    fn unicast_east_delivers_to_neighbor_only() {
        let mut fabric = Fabric::new(FabricDims::new(3, 1));
        let c = Color::new(0);
        fabric
            .program_unicast(PeId::new(0, 0), Port::East, c)
            .unwrap();
        let report = fabric.send(PeId::new(0, 0), c, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(report.deliveries, 1);
        assert_eq!(report.links_crossed, 1);
        assert_eq!(report.max_depth, 1);
        assert_eq!(fabric.pending(PeId::new(1, 0), c), 1);
        assert_eq!(
            fabric.take_message(PeId::new(1, 0), c).unwrap(),
            vec![1.0, 2.0, 3.0]
        );
        assert_eq!(fabric.pending(PeId::new(2, 0), c), 0);
        assert_eq!(fabric.stats().link_bytes, 12);
        assert_eq!(
            fabric.pe(PeId::new(0, 0)).counters().fabric_sent_wavelets,
            3
        );
        assert_eq!(
            fabric.pe(PeId::new(1, 0)).counters().fabric_recv_wavelets,
            3
        );
    }

    #[test]
    fn row_broadcast_reaches_every_pe_to_the_east() {
        // Source forwards ramp→east; every other PE forwards west→{ramp, east} so the
        // data both lands locally and continues down the row.
        let mut fabric = Fabric::new(FabricDims::new(4, 1));
        let c = Color::new(1);
        fabric.set_color_config(
            PeId::new(0, 0),
            c,
            SwitchConfig::fixed(RouterRule::new(&[Port::Ramp], &[Port::East])),
        );
        for x in 1..4 {
            let tx: &[Port] = if x == 3 {
                &[Port::Ramp]
            } else {
                &[Port::Ramp, Port::East]
            };
            fabric.set_color_config(
                PeId::new(x, 0),
                c,
                SwitchConfig::fixed(RouterRule::new(&[Port::West], tx)),
            );
        }
        let report = fabric.send(PeId::new(0, 0), c, &[7.0]).unwrap();
        assert_eq!(report.deliveries, 3);
        assert_eq!(report.links_crossed, 3);
        assert_eq!(report.max_depth, 3);
        for x in 1..4 {
            assert_eq!(fabric.take_message(PeId::new(x, 0), c).unwrap(), vec![7.0]);
        }
    }

    #[test]
    fn listing1_switch_toggle_swaps_sender_and_receiver() {
        // Figure 4: PE0 starts as the broadcast root (config 0), PE1 as receiver
        // (config 1).  After advancing both switches the roles are reversed.
        let mut fabric = Fabric::new(FabricDims::new(2, 1));
        let c = Color::new(2);
        fabric.set_color_config(
            PeId::new(0, 0),
            c,
            SwitchConfig::listing1_broadcast(Port::East),
        );
        fabric.set_color_config(
            PeId::new(1, 0),
            c,
            SwitchConfig::listing1_broadcast_receiver_first(Port::East),
        );
        // Step 1: PE0 sends east, PE1 receives.
        fabric.send(PeId::new(0, 0), c, &[1.0]).unwrap();
        assert_eq!(fabric.take_message(PeId::new(1, 0), c).unwrap(), vec![1.0]);
        // Sending from PE1 in its receive position is a schedule bug and is rejected.
        assert!(fabric.send(PeId::new(1, 0), c, &[9.0]).is_err());
        // Advance both switch positions (the control command of Listing 1).
        fabric
            .advance_switch_at(&[PeId::new(0, 0), PeId::new(1, 0)], c)
            .unwrap();
        // Step 2: roles reversed — PE1 sends east?? no: the colour is an *eastward*
        // broadcast, so after the toggle PE1 is the root whose data flows east; PE1
        // is at the fabric edge, so instead verify PE0 now accepts from the west and
        // PE1 is in the sender position.
        assert_eq!(
            fabric
                .pe(PeId::new(1, 0))
                .router()
                .color_config(c)
                .unwrap()
                .current_position(),
            0
        );
        assert_eq!(
            fabric
                .pe(PeId::new(0, 0))
                .router()
                .color_config(c)
                .unwrap()
                .current_position(),
            1
        );
        assert_eq!(fabric.stats().control_advances, 2);
    }

    #[test]
    fn unprogrammed_color_and_off_fabric_routes_error() {
        let mut fabric = Fabric::new(FabricDims::new(2, 2));
        let c = Color::new(3);
        assert!(matches!(
            fabric.send(PeId::new(0, 0), c, &[1.0]),
            Err(FabricError::NoRouteConfigured { .. })
        ));
        // Route pointing west off the fabric edge.
        fabric.set_color_config(
            PeId::new(0, 0),
            c,
            SwitchConfig::fixed(RouterRule::new(&[Port::Ramp], &[Port::West])),
        );
        assert!(matches!(
            fabric.send(PeId::new(0, 0), c, &[1.0]),
            Err(FabricError::RoutedOffFabric { .. })
        ));
    }

    #[test]
    fn routing_loop_is_detected() {
        // Two PEs forwarding to each other forever.
        let mut fabric = Fabric::new(FabricDims::new(2, 1));
        let c = Color::new(4);
        fabric.set_color_config(
            PeId::new(0, 0),
            c,
            SwitchConfig::fixed(RouterRule::new(&[Port::Ramp, Port::East], &[Port::East])),
        );
        fabric.set_color_config(
            PeId::new(1, 0),
            c,
            SwitchConfig::fixed(RouterRule::new(&[Port::West], &[Port::West])),
        );
        assert!(matches!(
            fabric.send(PeId::new(0, 0), c, &[1.0]),
            Err(FabricError::RoutingLoop { .. })
        ));
    }

    #[test]
    fn stats_aggregate_compute_counters() {
        let mut fabric = Fabric::new(FabricDims::new(2, 1));
        let a = fabric.pe_mut(PeId::new(0, 0)).alloc("a", 4).unwrap();
        let d = crate::dsd::Dsd::full(a, 4);
        fabric.pe_mut(PeId::new(0, 0)).fill(d, 1.0).unwrap();
        fabric
            .pe_mut(PeId::new(0, 0))
            .fmuls_scalar(d, d, 2.0)
            .unwrap();
        let total = fabric.total_compute();
        assert_eq!(total.flops, 4);
        let max = fabric.max_per_pe_compute();
        assert_eq!(max.flops, 4);
        fabric.reset_stats();
        assert_eq!(fabric.total_compute().flops, 0);
    }
}
