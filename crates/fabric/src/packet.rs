//! Wavelets: the 32-bit packets moved by the fabric.
//!
//! "Links transfer data in 32-bit packets" (§III).  Payload data on the simulated
//! fabric is carried as `f32` values; this module provides the encode/decode between
//! `f32` values and raw 32-bit wavelets, control wavelets for switch-position
//! commands, and byte accounting helpers used by the traffic statistics.

use crate::color::Color;

/// Size of one wavelet payload in bytes.
pub const WAVELET_BYTES: usize = 4;

/// A single 32-bit wavelet tagged with a colour.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Wavelet {
    /// Routing/typing colour.
    pub color: Color,
    /// Raw 32-bit payload.
    pub bits: u32,
}

impl Wavelet {
    /// A data wavelet carrying an `f32`.
    pub fn from_f32(color: Color, value: f32) -> Self {
        Self {
            color,
            bits: value.to_bits(),
        }
    }

    /// Interpret the payload as an `f32`.
    pub fn as_f32(&self) -> f32 {
        f32::from_bits(self.bits)
    }

    /// A control wavelet instructing routers to advance the switch position of the
    /// given colour (the `mov32(fabric_control, …)` of the paper's Listing 1).
    pub fn control_advance(color: Color) -> Self {
        Self {
            color,
            bits: CONTROL_ADVANCE_MAGIC,
        }
    }

    /// Whether this wavelet is a switch-advance control command.
    pub fn is_control_advance(&self) -> bool {
        self.bits == CONTROL_ADVANCE_MAGIC
    }
}

/// Magic payload marking a switch-advance control wavelet.  The value is a NaN
/// pattern that cannot be produced by normal payload encoding of finite data.
const CONTROL_ADVANCE_MAGIC: u32 = 0x7FC0_C0DE;

/// A message: a block of `f32` values travelling under one colour.  On the wire it
/// occupies `len()` wavelets.
#[derive(Clone, Debug, PartialEq)]
pub struct Message {
    /// Routing colour.
    pub color: Color,
    /// Payload values.
    pub payload: Vec<f32>,
}

impl Message {
    /// Build a message from a payload slice.
    pub fn new(color: Color, payload: &[f32]) -> Self {
        Self {
            color,
            payload: payload.to_vec(),
        }
    }

    /// Number of wavelets this message occupies on a link.
    pub fn num_wavelets(&self) -> usize {
        self.payload.len()
    }

    /// Number of payload bytes this message moves across each link it traverses.
    pub fn num_bytes(&self) -> usize {
        self.payload.len() * WAVELET_BYTES
    }

    /// Split into individual wavelets (used by fine-grained router tests).
    pub fn wavelets(&self) -> impl Iterator<Item = Wavelet> + '_ {
        self.payload
            .iter()
            .map(move |&v| Wavelet::from_f32(self.color, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_round_trip() {
        let c = Color::new(1);
        for v in [0.0f32, -1.5, 3.25e7, f32::MIN_POSITIVE] {
            let w = Wavelet::from_f32(c, v);
            assert_eq!(w.as_f32(), v);
            assert!(!w.is_control_advance());
        }
    }

    #[test]
    fn control_wavelet_is_distinguishable() {
        let w = Wavelet::control_advance(Color::new(2));
        assert!(w.is_control_advance());
        assert!(w.as_f32().is_nan());
    }

    #[test]
    fn message_accounting() {
        let m = Message::new(Color::new(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.num_wavelets(), 3);
        assert_eq!(m.num_bytes(), 12);
        let back: Vec<f32> = m.wavelets().map(|w| w.as_f32()).collect();
        assert_eq!(back, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn empty_message_is_legal() {
        let m = Message::new(Color::new(5), &[]);
        assert_eq!(m.num_wavelets(), 0);
        assert_eq!(m.num_bytes(), 0);
    }
}
