//! A processing element: local memory, router, mailboxes and the vectorised
//! (DSD-driven) instruction set.
//!
//! "Each PE computes independently using data from its own private local memory"
//! (§III).  The instruction set implemented here is the subset the matrix-free FV
//! kernel needs — the same FMUL / FSUB / FADD / FNEG / FMA / FMOV operations the
//! paper counts in Table V — each operation updating the PE's [`OpCounters`] with
//! its FLOPs and memory traffic so measured counts can be compared with the
//! paper's static accounting.

use crate::color::{Color, NUM_ROUTABLE_COLORS};
use crate::dsd::Dsd;
use crate::error::FabricError;
use crate::geometry::PeId;
use crate::memory::{BufferId, PeMemory};
use crate::router::Router;
use crate::stats::OpCounters;
use std::collections::VecDeque;

const F32_BYTES: u64 = 4;

/// One processing element of the fabric.
#[derive(Clone, Debug)]
pub struct ProcessingElement {
    id: PeId,
    memory: PeMemory,
    router: Router,
    mailboxes: Vec<VecDeque<Vec<f32>>>,
    counters: OpCounters,
}

impl ProcessingElement {
    /// A PE with the default 48 KiB local memory.
    pub fn new(id: PeId) -> Self {
        Self::with_memory(id, PeMemory::new(id))
    }

    /// A PE with explicit memory (tests use reduced capacities).
    pub fn with_memory(id: PeId, memory: PeMemory) -> Self {
        Self {
            id,
            memory,
            router: Router::new(id),
            mailboxes: vec![VecDeque::new(); NUM_ROUTABLE_COLORS as usize],
            counters: OpCounters::default(),
        }
    }

    /// PE coordinates.
    pub fn id(&self) -> PeId {
        self.id
    }

    /// Immutable access to local memory.
    pub fn memory(&self) -> &PeMemory {
        &self.memory
    }

    /// Mutable access to local memory.
    pub fn memory_mut(&mut self) -> &mut PeMemory {
        &mut self.memory
    }

    /// Immutable access to the router.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Mutable access to the router.
    pub fn router_mut(&mut self) -> &mut Router {
        &mut self.router
    }

    /// The PE's operation counters.
    pub fn counters(&self) -> &OpCounters {
        &self.counters
    }

    /// Mutable access to the counters (used by the fabric when accounting traffic).
    pub fn counters_mut(&mut self) -> &mut OpCounters {
        &mut self.counters
    }

    /// Reset the compute counters (memory allocations and mailboxes are preserved).
    pub fn reset_counters(&mut self) {
        self.counters.reset();
    }

    // ---------------------------------------------------------------- mailboxes

    /// Deliver a payload to the mailbox of a colour (called by the fabric when a
    /// wavelet train lands on this PE's ramp).
    pub(crate) fn deliver(&mut self, color: Color, payload: Vec<f32>) {
        self.counters.fabric_recv_wavelets += payload.len() as u64;
        self.mailboxes[color.index()].push_back(payload);
    }

    /// Number of messages waiting on a colour.
    pub fn pending(&self, color: Color) -> usize {
        self.mailboxes[color.index()].len()
    }

    /// Pop the oldest message of a colour.
    pub fn take_message(&mut self, color: Color) -> Result<Vec<f32>, FabricError> {
        self.mailboxes[color.index()]
            .pop_front()
            .ok_or(FabricError::EmptyMailbox { pe: self.id, color })
    }

    /// Pop the oldest message of a colour, if any.
    pub fn try_take_message(&mut self, color: Color) -> Option<Vec<f32>> {
        self.mailboxes[color.index()].pop_front()
    }

    // ------------------------------------------------------- vectorised compute

    /// Allocate a named buffer in local memory.
    pub fn alloc(&mut self, name: &str, len: usize) -> Result<BufferId, FabricError> {
        self.memory.alloc(name, len)
    }

    /// `dst[i] = src[i]` (FMOV: 0 FLOPs, 1 load + 1 store per element).
    pub fn fmovs(&mut self, dst: Dsd, src: Dsd) -> Result<(), FabricError> {
        let values = src.gather(&self.memory)?;
        self.check_same_len(dst, src)?;
        dst.scatter(&mut self.memory, &values)?;
        self.counters.mem_load_bytes += values.len() as u64 * F32_BYTES;
        self.counters.mem_store_bytes += values.len() as u64 * F32_BYTES;
        Ok(())
    }

    /// Fill a view with a constant (counts stores only).
    pub fn fill(&mut self, dst: Dsd, value: f32) -> Result<(), FabricError> {
        dst.scatter(&mut self.memory, &vec![value; dst.len])?;
        self.counters.mem_store_bytes += dst.len as u64 * F32_BYTES;
        Ok(())
    }

    /// `dst[i] = a[i] + b[i]` (FADD: 1 FLOP, 2 loads + 1 store per element).
    pub fn fadds(&mut self, dst: Dsd, a: Dsd, b: Dsd) -> Result<(), FabricError> {
        self.binary_op(dst, a, b, |x, y| x + y, 1)
    }

    /// `dst[i] = a[i] - b[i]` (FSUB: 1 FLOP, 2 loads + 1 store per element).
    pub fn fsubs(&mut self, dst: Dsd, a: Dsd, b: Dsd) -> Result<(), FabricError> {
        self.binary_op(dst, a, b, |x, y| x - y, 1)
    }

    /// `dst[i] = a[i] * b[i]` (FMUL: 1 FLOP, 2 loads + 1 store per element).
    pub fn fmuls(&mut self, dst: Dsd, a: Dsd, b: Dsd) -> Result<(), FabricError> {
        self.binary_op(dst, a, b, |x, y| x * y, 1)
    }

    /// `dst[i] = -src[i]` (FNEG: 1 FLOP, 1 load + 1 store per element).
    pub fn fnegs(&mut self, dst: Dsd, src: Dsd) -> Result<(), FabricError> {
        let values: Vec<f32> = src.gather(&self.memory)?.iter().map(|v| -v).collect();
        self.check_same_len(dst, src)?;
        dst.scatter(&mut self.memory, &values)?;
        self.counters.flops += values.len() as u64;
        self.counters.mem_load_bytes += values.len() as u64 * F32_BYTES;
        self.counters.mem_store_bytes += values.len() as u64 * F32_BYTES;
        Ok(())
    }

    /// `dst[i] = acc[i] + a[i] * b[i]` (FMA: 2 FLOPs, 3 loads + 1 store per element).
    pub fn fmacs(&mut self, dst: Dsd, acc: Dsd, a: Dsd, b: Dsd) -> Result<(), FabricError> {
        if dst.len != acc.len || dst.len != a.len || dst.len != b.len {
            return Err(FabricError::DsdOutOfRange {
                detail: format!(
                    "fmacs length mismatch: dst {}, acc {}, a {}, b {}",
                    dst.len, acc.len, a.len, b.len
                ),
            });
        }
        let va = a.gather(&self.memory)?;
        let vb = b.gather(&self.memory)?;
        let vacc = acc.gather(&self.memory)?;
        let out: Vec<f32> = vacc
            .iter()
            .zip(va.iter().zip(vb.iter()))
            .map(|(&c, (&x, &y))| x.mul_add(y, c))
            .collect();
        dst.scatter(&mut self.memory, &out)?;
        let n = dst.len as u64;
        self.counters.flops += 2 * n;
        self.counters.mem_load_bytes += 3 * n * F32_BYTES;
        self.counters.mem_store_bytes += n * F32_BYTES;
        Ok(())
    }

    /// `dst[i] = src[i] * scalar` (FMUL with a scalar operand held in a register).
    pub fn fmuls_scalar(&mut self, dst: Dsd, src: Dsd, scalar: f32) -> Result<(), FabricError> {
        let values: Vec<f32> = src
            .gather(&self.memory)?
            .iter()
            .map(|v| v * scalar)
            .collect();
        self.check_same_len(dst, src)?;
        dst.scatter(&mut self.memory, &values)?;
        let n = dst.len as u64;
        self.counters.flops += n;
        self.counters.mem_load_bytes += n * F32_BYTES;
        self.counters.mem_store_bytes += n * F32_BYTES;
        Ok(())
    }

    /// `dst[i] += src[i] * scalar` (the axpy update of CG lines 6–7; FMA per element).
    pub fn axpy(&mut self, dst: Dsd, src: Dsd, scalar: f32) -> Result<(), FabricError> {
        self.check_same_len(dst, src)?;
        let vs = src.gather(&self.memory)?;
        let vd = dst.gather(&self.memory)?;
        let out: Vec<f32> = vd
            .iter()
            .zip(vs.iter())
            .map(|(&d, &s)| s.mul_add(scalar, d))
            .collect();
        dst.scatter(&mut self.memory, &out)?;
        let n = dst.len as u64;
        self.counters.flops += 2 * n;
        self.counters.mem_load_bytes += 2 * n * F32_BYTES;
        self.counters.mem_store_bytes += n * F32_BYTES;
        Ok(())
    }

    /// `dst[i] = src[i] + dst[i] * scalar` (the search-direction update of CG
    /// line 10; FMA per element).
    pub fn xpby(&mut self, dst: Dsd, src: Dsd, scalar: f32) -> Result<(), FabricError> {
        self.check_same_len(dst, src)?;
        let vs = src.gather(&self.memory)?;
        let vd = dst.gather(&self.memory)?;
        let out: Vec<f32> = vd
            .iter()
            .zip(vs.iter())
            .map(|(&d, &s)| d.mul_add(scalar, s))
            .collect();
        dst.scatter(&mut self.memory, &out)?;
        let n = dst.len as u64;
        self.counters.flops += 2 * n;
        self.counters.mem_load_bytes += 2 * n * F32_BYTES;
        self.counters.mem_store_bytes += n * F32_BYTES;
        Ok(())
    }

    /// Local dot product `Σ a[i]·b[i]` (FMA per element, result kept in a register —
    /// no store traffic).
    pub fn dot_local(&mut self, a: Dsd, b: Dsd) -> Result<f32, FabricError> {
        if a.len != b.len {
            return Err(FabricError::DsdOutOfRange {
                detail: format!("dot length mismatch: {} vs {}", a.len, b.len),
            });
        }
        let va = a.gather(&self.memory)?;
        let vb = b.gather(&self.memory)?;
        let mut acc = 0.0f32;
        for (&x, &y) in va.iter().zip(vb.iter()) {
            acc = x.mul_add(y, acc);
        }
        let n = a.len as u64;
        self.counters.flops += 2 * n;
        self.counters.mem_load_bytes += 2 * n * F32_BYTES;
        Ok(acc)
    }

    fn binary_op(
        &mut self,
        dst: Dsd,
        a: Dsd,
        b: Dsd,
        op: impl Fn(f32, f32) -> f32,
        flops_per_element: u64,
    ) -> Result<(), FabricError> {
        if dst.len != a.len || dst.len != b.len {
            return Err(FabricError::DsdOutOfRange {
                detail: format!("length mismatch: dst {}, a {}, b {}", dst.len, a.len, b.len),
            });
        }
        let va = a.gather(&self.memory)?;
        let vb = b.gather(&self.memory)?;
        let out: Vec<f32> = va.iter().zip(vb.iter()).map(|(&x, &y)| op(x, y)).collect();
        dst.scatter(&mut self.memory, &out)?;
        let n = dst.len as u64;
        self.counters.flops += flops_per_element * n;
        self.counters.mem_load_bytes += 2 * n * F32_BYTES;
        self.counters.mem_store_bytes += n * F32_BYTES;
        Ok(())
    }

    fn check_same_len(&self, a: Dsd, b: Dsd) -> Result<(), FabricError> {
        if a.len != b.len {
            return Err(FabricError::DsdOutOfRange {
                detail: format!("length mismatch: {} vs {}", a.len, b.len),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pe_with_buffers(len: usize) -> (ProcessingElement, BufferId, BufferId, BufferId) {
        let mut pe = ProcessingElement::with_memory(
            PeId::new(0, 0),
            PeMemory::with_capacity(PeId::new(0, 0), 16 * 1024, 64),
        );
        let a = pe.alloc("a", len).unwrap();
        let b = pe.alloc("b", len).unwrap();
        let c = pe.alloc("c", len).unwrap();
        (pe, a, b, c)
    }

    #[test]
    fn elementwise_ops_compute_and_count() {
        let (mut pe, a, b, c) = pe_with_buffers(4);
        pe.memory_mut().write(a, 0, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        pe.memory_mut()
            .write(b, 0, &[10.0, 20.0, 30.0, 40.0])
            .unwrap();
        pe.fadds(Dsd::full(c, 4), Dsd::full(a, 4), Dsd::full(b, 4))
            .unwrap();
        assert_eq!(
            pe.memory().read(c, 0, 4).unwrap(),
            vec![11.0, 22.0, 33.0, 44.0]
        );
        pe.fsubs(Dsd::full(c, 4), Dsd::full(b, 4), Dsd::full(a, 4))
            .unwrap();
        assert_eq!(
            pe.memory().read(c, 0, 4).unwrap(),
            vec![9.0, 18.0, 27.0, 36.0]
        );
        pe.fmuls(Dsd::full(c, 4), Dsd::full(a, 4), Dsd::full(b, 4))
            .unwrap();
        assert_eq!(
            pe.memory().read(c, 0, 4).unwrap(),
            vec![10.0, 40.0, 90.0, 160.0]
        );
        // 3 binary ops × 4 elements × 1 FLOP each.
        assert_eq!(pe.counters().flops, 12);
        // 3 ops × 4 elements × (2 loads + 1 store) × 4 bytes.
        assert_eq!(pe.counters().mem_load_bytes, 3 * 4 * 2 * 4);
        assert_eq!(pe.counters().mem_store_bytes, 3 * 4 * 4);
    }

    #[test]
    fn fma_neg_mov_fill() {
        let (mut pe, a, b, c) = pe_with_buffers(3);
        pe.memory_mut().write(a, 0, &[1.0, 2.0, 3.0]).unwrap();
        pe.memory_mut().write(b, 0, &[4.0, 5.0, 6.0]).unwrap();
        pe.fill(Dsd::full(c, 3), 1.0).unwrap();
        pe.fmacs(
            Dsd::full(c, 3),
            Dsd::full(c, 3),
            Dsd::full(a, 3),
            Dsd::full(b, 3),
        )
        .unwrap();
        assert_eq!(pe.memory().read(c, 0, 3).unwrap(), vec![5.0, 11.0, 19.0]);
        pe.fnegs(Dsd::full(c, 3), Dsd::full(c, 3)).unwrap();
        assert_eq!(pe.memory().read(c, 0, 3).unwrap(), vec![-5.0, -11.0, -19.0]);
        pe.fmovs(Dsd::full(a, 3), Dsd::full(c, 3)).unwrap();
        assert_eq!(pe.memory().read(a, 0, 3).unwrap(), vec![-5.0, -11.0, -19.0]);
        // FMA counts 2 FLOPs per element, FNEG 1, FMOV 0.
        assert_eq!(pe.counters().flops, 3 * 2 + 3);
    }

    #[test]
    fn axpy_xpby_scalar_and_dot() {
        let (mut pe, a, b, _c) = pe_with_buffers(4);
        pe.memory_mut().write(a, 0, &[1.0, 1.0, 1.0, 1.0]).unwrap();
        pe.memory_mut().write(b, 0, &[2.0, 2.0, 2.0, 2.0]).unwrap();
        pe.axpy(Dsd::full(a, 4), Dsd::full(b, 4), 3.0).unwrap();
        assert_eq!(pe.memory().read(a, 0, 4).unwrap(), vec![7.0; 4]);
        pe.xpby(Dsd::full(a, 4), Dsd::full(b, 4), 0.5).unwrap();
        assert_eq!(pe.memory().read(a, 0, 4).unwrap(), vec![5.5; 4]);
        pe.fmuls_scalar(Dsd::full(a, 4), Dsd::full(a, 4), 2.0)
            .unwrap();
        assert_eq!(pe.memory().read(a, 0, 4).unwrap(), vec![11.0; 4]);
        let dot = pe.dot_local(Dsd::full(a, 4), Dsd::full(b, 4)).unwrap();
        assert_eq!(dot, 88.0);
    }

    #[test]
    fn mailboxes_fifo_order() {
        let mut pe = ProcessingElement::new(PeId::new(2, 3));
        let c = Color::new(1);
        pe.deliver(c, vec![1.0]);
        pe.deliver(c, vec![2.0]);
        assert_eq!(pe.pending(c), 2);
        assert_eq!(pe.take_message(c).unwrap(), vec![1.0]);
        assert_eq!(pe.try_take_message(c), Some(vec![2.0]));
        assert!(pe.take_message(c).is_err());
        assert_eq!(pe.counters().fabric_recv_wavelets, 2);
    }

    #[test]
    fn length_mismatches_rejected() {
        let (mut pe, a, b, c) = pe_with_buffers(4);
        assert!(pe
            .fadds(Dsd::full(c, 4), Dsd::new(a, 0, 2), Dsd::full(b, 4))
            .is_err());
        assert!(pe.dot_local(Dsd::new(a, 0, 2), Dsd::full(b, 4)).is_err());
        assert!(pe
            .fmacs(
                Dsd::full(c, 4),
                Dsd::full(c, 4),
                Dsd::new(a, 0, 3),
                Dsd::full(b, 4)
            )
            .is_err());
    }

    #[test]
    fn reset_counters_only_clears_counts() {
        let (mut pe, a, b, c) = pe_with_buffers(2);
        pe.fadds(Dsd::full(c, 2), Dsd::full(a, 2), Dsd::full(b, 2))
            .unwrap();
        assert!(pe.counters().flops > 0);
        pe.reset_counters();
        assert_eq!(pe.counters().flops, 0);
        assert_eq!(pe.memory().len(c).unwrap(), 2);
    }
}
