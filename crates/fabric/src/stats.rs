//! Execution statistics: per-PE operation counters and fabric-wide traffic.
//!
//! The paper's performance analysis is built entirely on counted quantities —
//! FLOPs, memory loads/stores and fabric loads per cell (Table V), data-movement
//! versus compute time (Table IV) and roofline positions (Figure 6).  The simulator
//! counts the same quantities during functional execution so the models in
//! `mffv-perf` can be validated against *measured* counts rather than only static
//! formulas.

/// Per-PE compute and traffic counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// Floating-point operations executed (an FMA counts as 2, as in the paper).
    pub flops: u64,
    /// Bytes loaded from local memory.
    pub mem_load_bytes: u64,
    /// Bytes stored to local memory.
    pub mem_store_bytes: u64,
    /// Wavelets received from the fabric (landed on the ramp).
    pub fabric_recv_wavelets: u64,
    /// Wavelets injected into the fabric from this PE.
    pub fabric_sent_wavelets: u64,
}

impl OpCounters {
    /// Total local-memory traffic in bytes.
    pub fn mem_bytes(&self) -> u64 {
        self.mem_load_bytes + self.mem_store_bytes
    }

    /// Total fabric traffic in bytes (4 bytes per wavelet).
    pub fn fabric_bytes(&self) -> u64 {
        4 * (self.fabric_recv_wavelets + self.fabric_sent_wavelets)
    }

    /// Arithmetic intensity with respect to local memory traffic (FLOP / byte).
    pub fn memory_arithmetic_intensity(&self) -> f64 {
        if self.mem_bytes() == 0 {
            0.0
        } else {
            self.flops as f64 / self.mem_bytes() as f64
        }
    }

    /// Arithmetic intensity with respect to fabric traffic (FLOP / byte).
    pub fn fabric_arithmetic_intensity(&self) -> f64 {
        if self.fabric_bytes() == 0 {
            0.0
        } else {
            self.flops as f64 / self.fabric_bytes() as f64
        }
    }

    /// Element-wise sum of two counters.
    pub fn merged(&self, other: &OpCounters) -> OpCounters {
        OpCounters {
            flops: self.flops + other.flops,
            mem_load_bytes: self.mem_load_bytes + other.mem_load_bytes,
            mem_store_bytes: self.mem_store_bytes + other.mem_store_bytes,
            fabric_recv_wavelets: self.fabric_recv_wavelets + other.fabric_recv_wavelets,
            fabric_sent_wavelets: self.fabric_sent_wavelets + other.fabric_sent_wavelets,
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&mut self) {
        *self = OpCounters::default();
    }
}

/// Fabric-wide traffic statistics accumulated across every `send`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Number of messages injected into the fabric.
    pub messages_sent: u64,
    /// Number of link crossings (message granularity).
    pub link_crossings: u64,
    /// Number of wavelet·hop units (payload wavelets × links crossed).
    pub wavelet_hops: u64,
    /// Payload bytes moved across links (bytes × links crossed).
    pub link_bytes: u64,
    /// Messages delivered to PE ramps.
    pub deliveries: u64,
    /// Switch-advance control commands executed.
    pub control_advances: u64,
    /// Deepest single route (in links) observed — an indicator of the critical path
    /// of broadcast/reduction patterns.
    pub max_route_depth: u64,
}

impl FabricStats {
    /// Reset all statistics.
    pub fn reset(&mut self) {
        *self = FabricStats::default();
    }

    /// Average number of links each message crossed.
    pub fn mean_route_depth(&self) -> f64 {
        if self.messages_sent == 0 {
            0.0
        } else {
            self.link_crossings as f64 / self.messages_sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_intensities() {
        let c = OpCounters {
            flops: 96,
            mem_load_bytes: 800,
            mem_store_bytes: 272,
            fabric_recv_wavelets: 8,
            fabric_sent_wavelets: 0,
        };
        assert_eq!(c.mem_bytes(), 1072);
        assert_eq!(c.fabric_bytes(), 32);
        assert!((c.memory_arithmetic_intensity() - 96.0 / 1072.0).abs() < 1e-12);
        assert!((c.fabric_arithmetic_intensity() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_traffic_gives_zero_intensity() {
        let c = OpCounters::default();
        assert_eq!(c.memory_arithmetic_intensity(), 0.0);
        assert_eq!(c.fabric_arithmetic_intensity(), 0.0);
    }

    #[test]
    fn merge_and_reset() {
        let a = OpCounters {
            flops: 10,
            mem_load_bytes: 4,
            ..Default::default()
        };
        let b = OpCounters {
            flops: 5,
            mem_store_bytes: 8,
            ..Default::default()
        };
        let m = a.merged(&b);
        assert_eq!(m.flops, 15);
        assert_eq!(m.mem_bytes(), 12);
        let mut c = m;
        c.reset();
        assert_eq!(c, OpCounters::default());
    }

    #[test]
    fn fabric_stats_mean_depth() {
        let mut s = FabricStats::default();
        assert_eq!(s.mean_route_depth(), 0.0);
        s.messages_sent = 4;
        s.link_crossings = 10;
        assert_eq!(s.mean_route_depth(), 2.5);
        s.reset();
        assert_eq!(s, FabricStats::default());
    }
}
