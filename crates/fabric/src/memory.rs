//! Per-PE local memory with a 48 KiB budget.
//!
//! "Each PE has only 48 KiB memory space, making the reuse of data buffers
//! important" (§III-E1).  The paper manually manages buffer reuse "analogous to
//! register allocation optimization".  [`PeMemory`] models exactly this constraint:
//! every buffer a kernel needs must be allocated out of the 48 KiB budget, the
//! simulator refuses to over-allocate, and freed space can be reused — so the
//! memory-saving strategies of the paper become *testable* properties (see the
//! `mffv-core` mapping tests and the `table_memory` report).

use crate::error::FabricError;
use crate::geometry::PeId;

/// The local memory capacity of a WSE-2 PE in bytes.
pub const PE_MEMORY_BYTES: usize = 48 * 1024;

/// Bytes reserved for code and runtime state; the paper notes the local memory
/// "must retain instructions and all necessary data".  The default reservation is an
/// estimate for a kernel of this size and can be overridden per fabric.
pub const DEFAULT_CODE_RESERVATION_BYTES: usize = 6 * 1024;

/// Handle to a buffer allocated in a PE's local memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BufferId(usize);

#[derive(Clone, Debug)]
struct Buffer {
    name: String,
    data: Vec<f32>,
    freed: bool,
}

/// A PE's private local memory: named `f32` buffers drawn from a fixed byte budget.
#[derive(Clone, Debug)]
pub struct PeMemory {
    pe: PeId,
    capacity: usize,
    reserved: usize,
    used: usize,
    peak: usize,
    buffers: Vec<Buffer>,
}

impl PeMemory {
    /// Memory for one PE with the default 48 KiB capacity and code reservation.
    pub fn new(pe: PeId) -> Self {
        Self::with_capacity(pe, PE_MEMORY_BYTES, DEFAULT_CODE_RESERVATION_BYTES)
    }

    /// Memory with an explicit capacity and code reservation (tests use tiny
    /// capacities to exercise the out-of-memory path cheaply).
    pub fn with_capacity(pe: PeId, capacity: usize, reserved: usize) -> Self {
        assert!(
            reserved < capacity,
            "code reservation must leave room for data"
        );
        Self {
            pe,
            capacity,
            reserved,
            used: reserved,
            peak: reserved,
            buffers: Vec::new(),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently allocated (including the code reservation).
    pub fn used(&self) -> usize {
        self.used
    }

    /// Peak bytes ever allocated (including the code reservation).
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Bytes reserved for code and runtime state.
    pub fn reserved(&self) -> usize {
        self.reserved
    }

    /// Bytes still available for allocation.
    pub fn available(&self) -> usize {
        self.capacity - self.used
    }

    /// Allocate a named buffer of `len` f32 elements, zero-initialised.
    pub fn alloc(&mut self, name: &str, len: usize) -> Result<BufferId, FabricError> {
        let bytes = len * std::mem::size_of::<f32>();
        if bytes > self.available() {
            return Err(FabricError::OutOfMemory {
                pe: self.pe,
                requested: bytes,
                available: self.available(),
                capacity: self.capacity,
            });
        }
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        self.buffers.push(Buffer {
            name: name.to_string(),
            data: vec![0.0; len],
            freed: false,
        });
        Ok(BufferId(self.buffers.len() - 1))
    }

    /// Free a buffer, returning its bytes to the budget.  The paper's buffer-reuse
    /// optimisation corresponds to freeing intermediates and reallocating the space.
    pub fn free(&mut self, id: BufferId) -> Result<(), FabricError> {
        let buf = self.buffer_mut(id)?;
        if buf.freed {
            return Err(FabricError::InvalidBuffer {
                detail: format!("buffer '{}' already freed", buf.name),
            });
        }
        let bytes = buf.data.len() * std::mem::size_of::<f32>();
        buf.freed = true;
        buf.data = Vec::new();
        self.used -= bytes;
        Ok(())
    }

    /// Length (in elements) of a buffer.
    pub fn len(&self, id: BufferId) -> Result<usize, FabricError> {
        Ok(self.buffer(id)?.data.len())
    }

    /// Whether no data buffers are live (only the code reservation is held).
    pub fn is_empty(&self) -> bool {
        self.buffers.iter().all(|b| b.freed)
    }

    /// Read-only view of a buffer.
    pub fn slice(&self, id: BufferId) -> Result<&[f32], FabricError> {
        Ok(&self.buffer(id)?.data)
    }

    /// Mutable view of a buffer.
    pub fn slice_mut(&mut self, id: BufferId) -> Result<&mut [f32], FabricError> {
        Ok(&mut self.buffer_mut(id)?.data)
    }

    /// Copy `values` into a buffer starting at `offset`.
    pub fn write(
        &mut self,
        id: BufferId,
        offset: usize,
        values: &[f32],
    ) -> Result<(), FabricError> {
        let data = self.slice_mut(id)?;
        if offset + values.len() > data.len() {
            return Err(FabricError::DsdOutOfRange {
                detail: format!(
                    "write of {} values at offset {offset} into buffer of {}",
                    values.len(),
                    data.len()
                ),
            });
        }
        data[offset..offset + values.len()].copy_from_slice(values);
        Ok(())
    }

    /// Copy a buffer range out.
    pub fn read(&self, id: BufferId, offset: usize, len: usize) -> Result<Vec<f32>, FabricError> {
        let data = self.slice(id)?;
        if offset + len > data.len() {
            return Err(FabricError::DsdOutOfRange {
                detail: format!(
                    "read of {len} values at offset {offset} from buffer of {}",
                    data.len()
                ),
            });
        }
        Ok(data[offset..offset + len].to_vec())
    }

    /// Name of a buffer (for traces and error messages).
    pub fn name(&self, id: BufferId) -> Result<&str, FabricError> {
        Ok(&self.buffer(id)?.name)
    }

    /// A breakdown of live allocations `(name, bytes)` — used by the memory-budget
    /// report that reproduces the paper's §III-E1 discussion.
    pub fn live_allocations(&self) -> Vec<(String, usize)> {
        self.buffers
            .iter()
            .filter(|b| !b.freed)
            .map(|b| (b.name.clone(), b.data.len() * std::mem::size_of::<f32>()))
            .collect()
    }

    fn buffer(&self, id: BufferId) -> Result<&Buffer, FabricError> {
        let buf = self
            .buffers
            .get(id.0)
            .ok_or_else(|| FabricError::InvalidBuffer {
                detail: format!("unknown buffer id {}", id.0),
            })?;
        if buf.freed {
            return Err(FabricError::InvalidBuffer {
                detail: format!("buffer '{}' used after free", buf.name),
            });
        }
        Ok(buf)
    }

    fn buffer_mut(&mut self, id: BufferId) -> Result<&mut Buffer, FabricError> {
        let buf = self
            .buffers
            .get_mut(id.0)
            .ok_or_else(|| FabricError::InvalidBuffer {
                detail: format!("unknown buffer id {}", id.0),
            })?;
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> PeMemory {
        PeMemory::with_capacity(PeId::new(0, 0), 1024, 128)
    }

    #[test]
    fn default_capacity_is_48_kib() {
        let m = PeMemory::new(PeId::new(1, 2));
        assert_eq!(m.capacity(), 48 * 1024);
        assert_eq!(m.used(), DEFAULT_CODE_RESERVATION_BYTES);
    }

    #[test]
    fn alloc_write_read_round_trip() {
        let mut m = mem();
        let b = m.alloc("pressure", 8).unwrap();
        m.write(b, 2, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(
            m.read(b, 0, 8).unwrap(),
            vec![0.0, 0.0, 1.0, 2.0, 3.0, 0.0, 0.0, 0.0]
        );
        assert_eq!(m.len(b).unwrap(), 8);
        assert_eq!(m.name(b).unwrap(), "pressure");
    }

    #[test]
    fn budget_is_enforced_and_freeing_returns_space() {
        let mut m = mem(); // 1024 - 128 = 896 bytes available = 224 f32
        assert_eq!(m.available(), 896);
        let a = m.alloc("a", 200).unwrap();
        assert!(m.alloc("b", 100).is_err(), "over-allocation must fail");
        m.free(a).unwrap();
        assert_eq!(m.available(), 896);
        let _b = m.alloc("b", 224).unwrap();
        assert_eq!(m.available(), 0);
        assert_eq!(m.peak(), 1024);
    }

    #[test]
    fn use_after_free_and_double_free_rejected() {
        let mut m = mem();
        let a = m.alloc("a", 4).unwrap();
        m.free(a).unwrap();
        assert!(m.read(a, 0, 1).is_err());
        assert!(m.free(a).is_err());
        assert!(m.is_empty());
    }

    #[test]
    fn out_of_range_access_rejected() {
        let mut m = mem();
        let a = m.alloc("a", 4).unwrap();
        assert!(m.write(a, 3, &[1.0, 2.0]).is_err());
        assert!(m.read(a, 4, 1).is_err());
    }

    #[test]
    fn live_allocation_breakdown() {
        let mut m = mem();
        let a = m.alloc("keep", 10).unwrap();
        let b = m.alloc("drop", 20).unwrap();
        m.free(b).unwrap();
        let live = m.live_allocations();
        assert_eq!(live, vec![("keep".to_string(), 40)]);
        let _ = a;
    }

    #[test]
    #[should_panic]
    fn reservation_larger_than_capacity_rejected() {
        let _ = PeMemory::with_capacity(PeId::new(0, 0), 100, 200);
    }
}
