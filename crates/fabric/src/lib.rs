#![forbid(unsafe_code)]
//! # mffv-fabric
//!
//! A software simulator of a wafer-scale **dataflow fabric** in the style of the
//! Cerebras WSE-2 the paper targets (§III, Figure 2).  The real machine is
//! programmed in CSL and is not reachable from Rust, so this crate substitutes a
//! functional, instrumented model of the same architectural ingredients
//! (`DESIGN.md` §2):
//!
//! * a 2-D Cartesian mesh of **processing elements** ([`pe::ProcessingElement`]),
//!   each with its own private local memory ([`memory::PeMemory`], 48 KiB budget)
//!   and its own **router** ([`router::Router`]) with five full-duplex links
//!   (RAMP, North, East, South, West);
//! * **colours** ([`color::Color`]) tagging 32-bit wavelets ([`packet`]) and
//!   selecting per-colour routes with programmable **switch positions** and ring
//!   mode, replicating the CSL router programming of the paper's Listing 1;
//! * fabric-level message routing with hop/wavelet accounting ([`fabric::Fabric`]);
//! * **DSD-style vector operations** ([`dsd`]) that perform the per-PE arithmetic
//!   while counting FLOPs and memory traffic exactly as Table V does;
//! * a **device-time cost model** ([`timing`]) that converts the counted FLOPs,
//!   memory traffic, fabric traffic and hop distances into modelled WSE-2 seconds
//!   using the machine ceilings published in the paper.
//!
//! Functional behaviour (what data ends up where) is exact; wall-clock is modelled,
//! not measured — see `EXPERIMENTS.md` for how the two are reported.

pub mod color;
pub mod dsd;
pub mod error;
pub mod fabric;
pub mod geometry;
pub mod memory;
pub mod packet;
pub mod pe;
pub mod router;
pub mod stats;
pub mod timing;

pub use color::{Color, ColorAllocator};
pub use dsd::Dsd;
pub use error::FabricError;
pub use fabric::Fabric;
pub use geometry::{FabricDims, PeId, Port};
pub use memory::{BufferId, PeMemory, PE_MEMORY_BYTES};
pub use pe::ProcessingElement;
pub use router::{Router, RouterRule, SwitchConfig};
pub use stats::{FabricStats, OpCounters};
pub use timing::{DeviceTimeModel, WseSpec};

/// Convenient glob import.
pub mod prelude {
    pub use crate::color::{Color, ColorAllocator};
    pub use crate::dsd::Dsd;
    pub use crate::error::FabricError;
    pub use crate::fabric::Fabric;
    pub use crate::geometry::{FabricDims, PeId, Port};
    pub use crate::memory::{BufferId, PeMemory, PE_MEMORY_BYTES};
    pub use crate::pe::ProcessingElement;
    pub use crate::router::{Router, RouterRule, SwitchConfig};
    pub use crate::stats::{FabricStats, OpCounters};
    pub use crate::timing::{DeviceTimeModel, WseSpec};
}
