//! Error type shared by the fabric simulator.

use crate::color::Color;
use crate::geometry::{PeId, Port};

/// Everything that can go wrong while programming or driving the simulated fabric.
#[derive(Clone, Debug, PartialEq)]
pub enum FabricError {
    /// The referenced PE coordinate is outside the fabric.
    PeOutOfBounds {
        pe: PeId,
        width: usize,
        height: usize,
    },
    /// A per-PE memory allocation exceeded the local memory budget.
    OutOfMemory {
        pe: PeId,
        requested: usize,
        available: usize,
        capacity: usize,
    },
    /// A buffer handle was used after being freed or belongs to another PE.
    InvalidBuffer { detail: String },
    /// A DSD referenced elements outside its buffer.
    DsdOutOfRange { detail: String },
    /// A wavelet arrived at a router on a port its current switch position does not
    /// accept — in hardware the wavelet would be misrouted; the simulator reports it
    /// so communication-schedule bugs surface in tests.
    RouteRejected {
        pe: PeId,
        color: Color,
        incoming: Port,
    },
    /// A wavelet was routed off the edge of the fabric.
    RoutedOffFabric {
        pe: PeId,
        color: Color,
        outgoing: Port,
    },
    /// No route is configured for a colour at a router.
    NoRouteConfigured { pe: PeId, color: Color },
    /// A receive was attempted on a colour with an empty mailbox.
    EmptyMailbox { pe: PeId, color: Color },
    /// The routing of a single send exceeded the hop budget (a cycle in the route
    /// programming).
    RoutingLoop { color: Color, hops: usize },
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::PeOutOfBounds { pe, width, height } => {
                write!(f, "PE {pe} outside fabric of {width}x{height}")
            }
            FabricError::OutOfMemory { pe, requested, available, capacity } => write!(
                f,
                "PE {pe} out of local memory: requested {requested} B, {available} B of {capacity} B available"
            ),
            FabricError::InvalidBuffer { detail } => write!(f, "invalid buffer: {detail}"),
            FabricError::DsdOutOfRange { detail } => write!(f, "DSD out of range: {detail}"),
            FabricError::RouteRejected { pe, color, incoming } => {
                write!(f, "router at {pe} rejected colour {color} arriving on {incoming:?}")
            }
            FabricError::RoutedOffFabric { pe, color, outgoing } => {
                write!(f, "colour {color} routed off the fabric at {pe} towards {outgoing:?}")
            }
            FabricError::NoRouteConfigured { pe, color } => {
                write!(f, "no route configured at {pe} for colour {color}")
            }
            FabricError::EmptyMailbox { pe, color } => {
                write!(f, "no message pending at {pe} for colour {color}")
            }
            FabricError::RoutingLoop { color, hops } => {
                write!(f, "routing of colour {color} exceeded {hops} hops (loop?)")
            }
        }
    }
}

impl std::error::Error for FabricError {}

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, FabricError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_useful_messages() {
        let e = FabricError::OutOfMemory {
            pe: PeId::new(1, 2),
            requested: 100,
            available: 10,
            capacity: 48 * 1024,
        };
        let msg = e.to_string();
        assert!(msg.contains("out of local memory"));
        assert!(msg.contains("100"));
        let e2 = FabricError::EmptyMailbox {
            pe: PeId::new(0, 0),
            color: Color::new(3),
        };
        assert!(e2.to_string().contains("no message pending"));
    }
}
