//! # mffv — Matrix-Free Finite Volume Kernels on a (simulated) Dataflow Architecture
//!
//! Umbrella crate re-exporting the whole workspace.  See `README.md` for the project
//! overview, `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.
//!
//! ```
//! use mffv::prelude::*;
//!
//! let workload = WorkloadSpec::quickstart().build();
//! assert_eq!(workload.dims().num_cells(), 16 * 16 * 8);
//! ```

pub use mffv_core as core;
pub use mffv_fabric as fabric;
pub use mffv_fv as fv;
pub use mffv_gpu_ref as gpu_ref;
pub use mffv_mesh as mesh;
pub use mffv_perf as perf;
pub use mffv_solver as solver;

/// One-stop import of the most commonly used types across all crates.
pub mod prelude {
    pub use mffv_core::prelude::*;
    pub use mffv_fabric::prelude::*;
    pub use mffv_fv::prelude::*;
    pub use mffv_gpu_ref::prelude::*;
    pub use mffv_mesh::prelude::*;
    pub use mffv_perf::prelude::*;
    pub use mffv_solver::prelude::*;
}
