#![forbid(unsafe_code)]
//! # mffv — Matrix-Free Finite Volume Kernels on a (simulated) Dataflow Architecture
//!
//! Umbrella crate for the whole workspace, and home of the backend-agnostic
//! [`Simulation`] facade: one builder API that runs the same matrix-free FV
//! pressure solve on the host f64 oracle, the GPU-style reference, or the
//! simulated WSE-2 dataflow fabric — and compares them, reproducing the
//! paper's §V-B numerical-integrity experiment programmatically.
//!
//! ```
//! use mffv::prelude::*;
//!
//! let workload = WorkloadSpec::quickstart().build();
//!
//! // One backend: returns a unified `SolveReport`.
//! let report = Simulation::new(workload.clone())
//!     .tolerance(1e-10)
//!     .backend(Backend::dataflow())
//!     .run()
//!     .unwrap();
//! assert!(report.converged());
//! assert!(report.modelled_time().unwrap() > 0.0);
//!
//! // All three paper targets: returns the §V-B agreement table.
//! let agreement = Simulation::new(workload).tolerance(1e-10).compare().unwrap();
//! assert!(agreement.agrees_within(1e-3));
//! ```
//!
//! Every solve can run as an **observable, cancellable session**: attach a
//! `SolveMonitor` with [`Simulation::monitor`] to stream typed per-iteration
//! events (`Started`, `Iteration { k, rr }`, `Converged`, `Stopped`), or a
//! `StopPolicy` ([`Simulation::deadline`], [`Simulation::cancel_token`],
//! [`Simulation::stop_policy`]) to bound wall-clock, budget iterations, or
//! cancel mid-flight — on any backend, with the partial convergence history
//! still reported.  See the README's "Monitoring, deadlines & cancellation"
//! and `examples/live_convergence.rs`.
//!
//! For many solves at once — scenario sweeps, cross-backend comparison
//! studies, throughput measurements — the [`Engine`] executes batches of
//! [`JobSpec`]s on a worker pool with deterministic, panic-isolated results
//! (see [`mffv_engine`] and [`Simulation::batch`]):
//!
//! ```
//! use mffv::prelude::*;
//!
//! let jobs = SweepBuilder::new(WorkloadSpec::quickstart())
//!     .grids([Dims::new(8, 8, 4), Dims::new(12, 12, 6)])
//!     .backends([Backend::host(), Backend::dataflow()])
//!     .jobs();
//! let report = Engine::new(2).run(jobs);
//! assert!(report.all_succeeded());
//! println!("{report}"); // per-job status + jobs/s + p50/p95 latency
//! ```
//!
//! Every layer is **traceable**: attach a recording [`Tracer`] with
//! [`Simulation::tracer`] and the solve emits a hierarchical span tree
//! (operator build → CG loop → iteration chunks; transient → per-step;
//! engine → queue-wait/execute per job) exportable as a text tree, canonical
//! JSON, or a Chrome/Perfetto trace — with traced results bitwise identical
//! to untraced ones.  See [`telemetry`] and `examples/trace_dump.rs`.
//!
//! The sub-crates remain available for lower-level work (fabric programming,
//! operator mathematics, performance models); see the workspace `README.md`.

pub mod backend;
pub mod report;
pub mod simulation;

pub use mffv_core as dataflow;
pub use mffv_engine as engine;
pub use mffv_fabric as fabric;
pub use mffv_fv as fv;
pub use mffv_gpu_ref as gpu_ref;
pub use mffv_mesh as mesh;
pub use mffv_perf as perf;
pub use mffv_solver as solver;
pub use mffv_telemetry as telemetry;

pub use backend::Backend;
pub use mffv_engine::{BatchReport, Engine, JobOutcome, JobSpec, JobStatus, SweepBuilder};
pub use mffv_mesh::{DtPolicy, TransientSpec, Well, WellControl, WellSet};
pub use mffv_solver::transient::{PressureSnapshot, TransientReport, TransientStep, WellTotal};
pub use mffv_telemetry::{LogHistogram, MetricsRegistry, PhaseNode, Tracer};
pub use report::{AgreementReport, PairwiseDisagreement, SolveReport};
pub use simulation::Simulation;

/// One-stop import of the most commonly used types across all crates,
/// including the `Simulation` facade.
pub mod prelude {
    pub use crate::backend::Backend;
    pub use crate::report::{AgreementReport, PairwiseDisagreement};
    pub use crate::simulation::Simulation;
    pub use mffv_core::prelude::*;
    pub use mffv_engine::{BatchReport, Engine, JobOutcome, JobSpec, JobStatus, SweepBuilder};
    pub use mffv_fabric::prelude::*;
    pub use mffv_fv::prelude::*;
    pub use mffv_gpu_ref::prelude::*;
    pub use mffv_mesh::prelude::*;
    pub use mffv_perf::prelude::*;
    pub use mffv_solver::prelude::*;
    pub use mffv_telemetry::prelude::*;
}
