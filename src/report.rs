//! Unified reporting for the [`Simulation`](crate::Simulation) facade.
//!
//! Re-exports the per-backend [`SolveReport`] shape (defined next to the
//! [`SolveBackend`](mffv_solver::backend::SolveBackend) trait) and adds the
//! cross-backend [`AgreementReport`] — the programmatic form of the paper's
//! §V-B numerical-integrity table: every registered backend's iterations,
//! residual and modelled time, plus the pairwise maximum pressure
//! disagreements.

pub use mffv_solver::backend::{DeviceSection, SolveError, SolveReport};

use mffv_mesh::Dims;
use mffv_perf::report::format_table;

/// Maximum pressure disagreement between one pair of backends.
#[derive(Clone, Debug)]
pub struct PairwiseDisagreement {
    /// First backend name.
    pub a: String,
    /// Second backend name.
    pub b: String,
    /// `max |p_a - p_b|` over all cells.
    pub max_abs_diff: f64,
    /// The same, relative to the pair's pressure scale `max(|p_a|, |p_b|)`.
    pub max_rel_diff: f64,
}

/// Cross-backend agreement summary produced by
/// [`Simulation::compare`](crate::Simulation::compare).
#[derive(Clone, Debug)]
pub struct AgreementReport {
    /// Name of the workload all backends solved.
    pub workload: String,
    /// Grid extents of the workload.
    pub dims: Dims,
    /// Per-backend reports, in execution order.
    pub reports: Vec<SolveReport>,
    /// All backend pairs and their maximum pressure disagreements.
    pub pairwise: Vec<PairwiseDisagreement>,
    /// Backends that failed to produce a report (their errors, in execution
    /// order).  The agreement table is computed over the successful backends
    /// only, so one failing backend no longer discards the completed runs.
    pub failures: Vec<SolveError>,
}

impl AgreementReport {
    /// Build the agreement summary from individual backend reports.
    pub fn from_reports(
        workload: impl Into<String>,
        dims: Dims,
        reports: Vec<SolveReport>,
    ) -> Self {
        let mut pairwise = Vec::new();
        for i in 0..reports.len() {
            for j in (i + 1)..reports.len() {
                let max_abs_diff = reports[i].max_abs_diff(&reports[j]);
                let scale = reports[i]
                    .pressure
                    .max_abs()
                    .max(reports[j].pressure.max_abs())
                    .max(f64::MIN_POSITIVE);
                pairwise.push(PairwiseDisagreement {
                    a: reports[i].backend.clone(),
                    b: reports[j].backend.clone(),
                    max_abs_diff,
                    max_rel_diff: max_abs_diff / scale,
                });
            }
        }
        Self {
            workload: workload.into(),
            dims,
            reports,
            pairwise,
            failures: Vec::new(),
        }
    }

    /// Attach the errors of backends that failed to run (see
    /// [`Simulation::compare`](crate::Simulation::compare)).
    pub fn with_failures(mut self, failures: Vec<SolveError>) -> Self {
        self.failures = failures;
        self
    }

    /// The report of a named backend, if it ran.
    pub fn report(&self, backend: &str) -> Option<&SolveReport> {
        self.reports.iter().find(|r| r.backend == backend)
    }

    /// Largest absolute pressure disagreement over all backend pairs.
    pub fn max_pairwise_diff(&self) -> f64 {
        self.pairwise
            .iter()
            .map(|p| p.max_abs_diff)
            // audit: allow(float-reduction) — reassociation-safe: max is
            // associative and commutative over the non-NaN values here.
            .fold(0.0, f64::max)
    }

    /// Largest relative pressure disagreement over all backend pairs.
    pub fn max_pairwise_rel_diff(&self) -> f64 {
        self.pairwise
            .iter()
            .map(|p| p.max_rel_diff)
            // audit: allow(float-reduction) — reassociation-safe: max is
            // associative and commutative over the non-NaN values here.
            .fold(0.0, f64::max)
    }

    /// Whether every pair of backends agrees to `tolerance` in the relative
    /// max-norm (the §V-B integrity criterion: f32 device precision ⇒ `1e-3`).
    ///
    /// A backend that failed to run cannot agree with anything, so this is
    /// `false` whenever [`failures`](Self::failures) is non-empty — agreement
    /// over the surviving subset must not pass vacuously.
    pub fn agrees_within(&self, tolerance: f64) -> bool {
        self.failures.is_empty() && self.max_pairwise_rel_diff() < tolerance
    }
}

impl std::fmt::Display for AgreementReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Numerical integrity — {} ({}, {} backends)",
            self.workload,
            self.dims,
            self.reports.len()
        )?;
        let rows: Vec<Vec<String>> = self
            .reports
            .iter()
            .map(|r| {
                vec![
                    r.backend.clone(),
                    r.iterations().to_string(),
                    r.converged().to_string(),
                    format!("{:.3e}", r.final_residual_max),
                    r.modelled_time()
                        .map(|t| format!("{t:.4e}"))
                        .unwrap_or_else(|| "-".to_string()),
                ]
            })
            .collect();
        writeln!(
            f,
            "{}",
            format_table(
                &[
                    "Backend",
                    "Iterations",
                    "Converged",
                    "|r|_max",
                    "Modelled time [s]"
                ],
                &rows
            )
        )?;
        let rows: Vec<Vec<String>> = self
            .pairwise
            .iter()
            .map(|p| {
                vec![
                    format!("{} vs {}", p.a, p.b),
                    format!("{:.3e}", p.max_abs_diff),
                    format!("{:.3e}", p.max_rel_diff),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            format_table(&["Pair", "max |Δp| [Pa]", "max |Δp| / scale"], &rows)
        )?;
        for failure in &self.failures {
            write!(f, "\nFAILED: {failure}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mffv_mesh::CellField;
    use mffv_solver::convergence::ConvergenceHistory;

    fn fake_report(name: &str, value: f64) -> SolveReport {
        let dims = Dims::new(2, 2, 2);
        SolveReport {
            backend: name.to_string(),
            pressure: CellField::constant(dims, value),
            history: ConvergenceHistory::starting_from(1.0),
            final_residual_max: 0.0,
            host_wall_seconds: 0.0,
            device: None,
            stopped: None,
        }
    }

    #[test]
    fn pairwise_disagreements_cover_all_pairs() {
        let dims = Dims::new(2, 2, 2);
        let reports = vec![
            fake_report("a", 1.0),
            fake_report("b", 1.0005),
            fake_report("c", 2.0),
        ];
        let agreement = AgreementReport::from_reports("test", dims, reports);
        assert_eq!(agreement.pairwise.len(), 3);
        assert!((agreement.max_pairwise_diff() - 1.0).abs() < 1e-12);
        assert!(!agreement.agrees_within(1e-3));
        assert!(agreement.agrees_within(0.6));
        assert!(agreement.report("b").is_some());
        assert!(agreement.report("missing").is_none());
    }

    #[test]
    fn display_renders_both_tables() {
        let dims = Dims::new(2, 2, 2);
        let agreement = AgreementReport::from_reports(
            "quickstart",
            dims,
            vec![fake_report("a", 1.0), fake_report("b", 1.0)],
        );
        assert!(agreement.failures.is_empty());
        let text = agreement.to_string();
        assert!(text.contains("Numerical integrity"));
        assert!(text.contains("a vs b"));
        assert!(text.contains("Backend"));
        assert!(!text.contains("FAILED"));
    }

    #[test]
    fn failures_are_carried_and_rendered() {
        let dims = Dims::new(2, 2, 2);
        let agreement =
            AgreementReport::from_reports("quickstart", dims, vec![fake_report("a", 1.0)])
                .with_failures(vec![SolveError::new("dataflow", "out of local memory")]);
        assert_eq!(agreement.failures.len(), 1);
        // A failed backend forbids vacuous agreement at any tolerance.
        assert!(!agreement.agrees_within(f64::INFINITY));
        let text = agreement.to_string();
        assert!(text.contains("FAILED: backend `dataflow` failed: out of local memory"));
    }
}
