//! Backend selection for the [`Simulation`](crate::Simulation) facade.
//!
//! The [`Backend`] enum itself lives in [`mffv_engine::backend`] so that the
//! batch engine's `JobSpec`s can name their solve target without depending on
//! this umbrella crate; it is re-exported here under its original path, so
//! `mffv::Backend` and `mffv::backend::Backend` keep working unchanged.

pub use mffv_engine::backend::Backend;
