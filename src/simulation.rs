//! The `Simulation` builder — one backend-agnostic entry point for every
//! pressure solve in the workspace.
//!
//! ```
//! use mffv::prelude::*;
//!
//! let workload = WorkloadSpec::quickstart().build();
//! let report = Simulation::new(workload)
//!     .tolerance(1e-10)
//!     .backend(Backend::host())
//!     .run()
//!     .unwrap();
//! assert!(report.converged());
//! ```
//!
//! `run()` executes the primary (first-registered) backend; `run_all()`
//! executes every registered backend — or the three paper targets when none
//! was registered — returning a per-backend outcome for each (one failing
//! backend does not discard the completed reports); `compare()` condenses the
//! successful runs into the §V-B numerical-integrity table
//! ([`AgreementReport`]), carrying any failures alongside; and `batch()`
//! executes the registered backends concurrently on the `mffv-engine` worker
//! pool, returning its [`BatchReport`].
//!
//! Solves are observable, cancellable *sessions*: `monitor()` streams typed
//! per-iteration events to a [`SolveMonitor`], and `deadline()` /
//! `cancel_token()` / `stop_policy()` attach declarative stop rules that end
//! a solve at an iteration boundary with its partial history reported.

use crate::backend::Backend;
use crate::report::{AgreementReport, SolveReport};
use mffv_engine::{BatchReport, Engine, JobSpec};
use mffv_mesh::{TransientSpec, Workload, WorkloadSpec};
use mffv_solver::backend::{Precision, PreconditionerKind, SolveConfig, SolveError};
use mffv_solver::monitor::{CancelToken, MonitorFanout, NullMonitor, SolveMonitor, StopPolicy};
use mffv_solver::transient::{run_transient_traced, TransientReport};
use mffv_telemetry::{Span, Tracer};
use std::collections::BTreeMap;
use std::time::Duration;

/// Builder facade over the three solver implementations.
#[derive(Clone, Debug)]
pub struct Simulation {
    workload: Workload,
    config: SolveConfig,
    backends: Vec<Backend>,
    policy: StopPolicy,
    tracer: Tracer,
}

impl Simulation {
    /// A simulation of `workload` with its own tolerance/iteration settings
    /// and no backend registered yet (`run()` then uses the host oracle).
    pub fn new(workload: Workload) -> Self {
        Self {
            workload,
            config: SolveConfig::default(),
            backends: Vec::new(),
            policy: StopPolicy::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// Convenience: build the workload from a spec first.
    pub fn from_spec(spec: &WorkloadSpec) -> Self {
        Self::new(spec.build())
    }

    /// Override the convergence tolerance on `rᵀr` for every backend.
    pub fn tolerance(mut self, tolerance: f64) -> Self {
        self.config.tolerance = Some(tolerance);
        self
    }

    /// Override the iteration cap for every backend.
    pub fn max_iterations(mut self, max_iterations: usize) -> Self {
        self.config.max_iterations = Some(max_iterations);
        self
    }

    /// Set the host-solve precision used when no backend is registered (a
    /// registered [`Backend::Host`] carries its own precision; the device
    /// backends always run `f32`).
    pub fn precision(mut self, precision: Precision) -> Self {
        self.config.precision = precision;
        self
    }

    /// Select the preconditioner for every backend's Krylov loop:
    /// [`PreconditionerKind::Jacobi`](mffv_solver::PreconditionerKind) for
    /// diagonal scaling or
    /// [`PreconditionerKind::Mg`](mffv_solver::PreconditionerKind) for the
    /// matrix-free geometric-multigrid V-cycle (near-constant iteration
    /// counts as the grid is refined).  The default (`None`) keeps the plain
    /// CG of earlier releases, bitwise identical.
    pub fn preconditioner(mut self, preconditioner: PreconditionerKind) -> Self {
        self.config.preconditioner = preconditioner;
        self
    }

    /// Run the host backend's planned stencil kernels on `threads` scoped
    /// threads.  Results — pressure fields and convergence histories — are
    /// bitwise identical for every thread count; the knob only changes how
    /// fast the hot apply/update passes run.  Device-style backends model
    /// their own parallelism and ignore it.
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = Some(threads);
        self
    }

    /// Register a backend.  The first registered backend is the one `run()`
    /// executes; `run_all()`/`compare()` execute all of them in order.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backends.push(backend);
        self
    }

    /// Register several backends at once.
    pub fn backends(mut self, backends: impl IntoIterator<Item = Backend>) -> Self {
        self.backends.extend(backends);
        self
    }

    /// Attach a full [`StopPolicy`] (iteration budget, deadline, stagnation
    /// and divergence rules, cancellation) to every solve this simulation
    /// runs.  Stopped solves return their partial report with
    /// [`SolveReport::stopped`](mffv_solver::SolveReport) set rather than an
    /// error — use [`SolveReport::require_completed`] for the strict form.
    pub fn stop_policy(mut self, policy: StopPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Bound every solve by `deadline` of wall-clock time (a serving-path
    /// SLA): the solve stops at the first iteration boundary past the
    /// deadline, reporting the partial convergence history.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.policy = self.policy.deadline(deadline);
        self
    }

    /// Watch `token`: cancelling it (from any thread) stops an in-flight
    /// solve at its next iteration boundary.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.policy = self.policy.cancel_token(token);
        self
    }

    /// Record every solve this simulation runs as a span tree under
    /// `tracer` — `solve @ backend` → operator build → `cg-loop` →
    /// per-chunk `iters`, plus per-step spans for transients and the full
    /// queue-wait/execute breakdown for [`batch`](Simulation::batch) runs.
    /// Export via [`mffv_telemetry`]'s text/JSON/Chrome-trace renderers.
    ///
    /// Tracing never alters results: traced solves are bitwise identical to
    /// untraced ones (pinned per backend in `tests/telemetry.rs`), and a
    /// disabled tracer (the default) costs one branch per would-be span.
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The workload being solved.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The normalized cross-backend settings.
    pub fn config(&self) -> &SolveConfig {
        &self.config
    }

    /// Run the primary backend (the first registered one, or the host oracle
    /// when none was registered) and return its unified report.
    ///
    /// With no stop policy attached this is the exact unmonitored solve path
    /// (bitwise identical to earlier releases); with one, the solve runs as
    /// a monitored session governed by the policy.
    pub fn run(&self) -> Result<SolveReport, SolveError> {
        self.run_backend(&self.primary_backend())
    }

    /// Run the primary backend as an observable session: `monitor` receives
    /// every [`SolveEvent`](mffv_solver::SolveEvent) of the inner CG loop
    /// (with `rr` payloads bitwise equal to the report's convergence
    /// history) and can stop the solve by returning
    /// [`Flow::Stop`](mffv_solver::Flow::Stop).  Any attached stop policy is
    /// active alongside and takes precedence.
    pub fn monitor(&self, monitor: &mut dyn SolveMonitor) -> Result<SolveReport, SolveError> {
        let backend = self.primary_backend();
        let mut session = self.policy.session();
        let fanout = MonitorFanout::new().push(&mut session).push(monitor);
        self.solve_on(&backend, Some(fanout))
    }

    /// Run one specific backend under this simulation's workload, config and
    /// stop policy.
    pub fn run_backend(&self, backend: &Backend) -> Result<SolveReport, SolveError> {
        self.solve_on(backend, None)
    }

    /// Run a transient scenario (implicit backward-Euler time stepping with
    /// wells — see [`mffv_solver::transient`]) on the primary backend.
    ///
    /// Every scenario knob of this builder carries over: tolerance and
    /// iteration caps apply per step, `threads(n)` keeps per-step results
    /// bitwise identical for any thread count, and the attached stop policy
    /// governs the whole run (one shared wall-clock deadline across steps;
    /// per-step iteration budgets).  Returns the [`TransientReport`] with
    /// per-step [`SolveReport`]s, requested snapshots and cumulative well
    /// volumes.
    pub fn transient(&self, spec: &TransientSpec) -> Result<TransientReport, SolveError> {
        self.transient_backend(&self.primary_backend(), spec)
    }

    /// Run a transient scenario on one specific backend (device-style
    /// backends step at their native `f32` precision).
    pub fn transient_backend(
        &self,
        backend: &Backend,
        spec: &TransientSpec,
    ) -> Result<TransientReport, SolveError> {
        let span = self.root_span("transient", backend);
        run_transient_traced(
            backend.instantiate().as_ref(),
            &self.workload,
            spec,
            &self.config,
            &self.policy,
            &span,
        )
    }

    /// Run a transient scenario on every registered backend (or the standard
    /// set), returning a per-backend outcome for each — the transient
    /// counterpart of [`run_all`](Simulation::run_all), and the raw material
    /// of cross-backend trajectory comparisons.
    ///
    /// Like `run_all`, report names are kept unique within the returned
    /// set: a second backend producing the same name is suffixed `#2`,
    /// `#3`, … (on the run report and every per-step report).
    pub fn transient_all(
        &self,
        spec: &TransientSpec,
    ) -> Vec<(Backend, Result<TransientReport, SolveError>)> {
        let mut outcomes: Vec<(Backend, Result<TransientReport, SolveError>)> = self
            .effective_backends()
            .into_iter()
            .map(|b| {
                let outcome = self.transient_backend(&b, spec);
                (b, outcome)
            })
            .collect();
        let mut seen = NameDisambiguator::new();
        for (_, outcome) in &mut outcomes {
            if let Ok(report) = outcome {
                if let Some(unique) = seen.disambiguate(&report.backend) {
                    for step in &mut report.steps {
                        step.report.backend = unique.clone();
                    }
                    report.backend = unique;
                }
            }
        }
        outcomes
    }

    /// The backend `run()`/`monitor()` executes.
    fn primary_backend(&self) -> Backend {
        self.backends.first().copied().unwrap_or(Backend::Host {
            precision: self.config.precision,
        })
    }

    /// The root span a solve or transient run records under, when tracing:
    /// `solve @ host-f64`, `transient @ dataflow`, ….  Null (no allocation,
    /// no clock read) when no recording tracer is attached.
    fn root_span(&self, kind: &str, backend: &Backend) -> Span {
        if self.tracer.is_recording() {
            self.tracer.span(&format!("{kind} @ {}", backend.name()))
        } else {
            Span::null()
        }
    }

    /// Dispatch one backend solve, monitored only when there is something to
    /// observe or enforce — the policy-free, monitor-free, tracer-free path
    /// stays the plain `solve()` call.
    fn solve_on(
        &self,
        backend: &Backend,
        extra: Option<MonitorFanout<'_>>,
    ) -> Result<SolveReport, SolveError> {
        let live = backend.instantiate();
        let span = self.root_span("solve", backend);
        match extra {
            Some(mut fanout) => live.solve_traced(&self.workload, &self.config, &mut fanout, &span),
            None if self.policy.is_empty() => {
                if span.is_recording() {
                    live.solve_traced(&self.workload, &self.config, &mut NullMonitor, &span)
                } else {
                    live.solve(&self.workload, &self.config)
                }
            }
            None => live.solve_traced(
                &self.workload,
                &self.config,
                &mut self.policy.session(),
                &span,
            ),
        }
    }

    /// Run every registered backend — or [`Backend::standard_set`] when none
    /// was registered — and return a per-backend outcome for each, in
    /// execution order.  One failing backend no longer discards the reports
    /// the other backends completed.
    ///
    /// Report names are kept unique within the returned set: a second backend
    /// producing the same name (e.g. two dataflow configurations) is suffixed
    /// `#2`, `#3`, … so [`AgreementReport`] lookups and the pairwise table
    /// stay unambiguous.
    pub fn run_all(&self) -> Vec<(Backend, Result<SolveReport, SolveError>)> {
        let mut outcomes: Vec<(Backend, Result<SolveReport, SolveError>)> = self
            .effective_backends()
            .into_iter()
            .map(|b| {
                let outcome = self.run_backend(&b);
                (b, outcome)
            })
            .collect();
        let mut seen = NameDisambiguator::new();
        for (_, outcome) in &mut outcomes {
            if let Ok(report) = outcome {
                if let Some(unique) = seen.disambiguate(&report.backend) {
                    report.backend = unique;
                }
            }
        }
        outcomes
    }

    /// Run every backend and condense the successful results into the
    /// cross-backend agreement report (the programmatic §V-B integrity
    /// table).  Backends that fail are recorded in
    /// [`AgreementReport::failures`] instead of discarding the completed
    /// runs; `Err` is returned only when *no* backend produced a report.
    pub fn compare(&self) -> Result<AgreementReport, SolveError> {
        let mut reports = Vec::new();
        let mut failures = Vec::new();
        for (_, outcome) in self.run_all() {
            match outcome {
                Ok(report) => reports.push(report),
                Err(error) => failures.push(error),
            }
        }
        if reports.is_empty() {
            return Err(failures
                .into_iter()
                .next()
                .unwrap_or_else(|| SolveError::new("simulation", "no backend produced a report")));
        }
        Ok(
            AgreementReport::from_reports(self.workload.name(), self.workload.dims(), reports)
                .with_failures(failures),
        )
    }

    /// Run every registered backend (or the standard set) concurrently on a
    /// `workers`-thread [`Engine`] — the batch counterpart of [`run_all`].
    /// Per-job outcomes arrive in backend registration order regardless of
    /// worker count, and each report is bitwise identical to the
    /// corresponding serial [`run_backend`] result.
    ///
    /// [`run_all`]: Simulation::run_all
    /// [`run_backend`]: Simulation::run_backend
    pub fn batch(&self, workers: usize) -> BatchReport {
        let jobs: Vec<JobSpec> = self
            .effective_backends()
            .into_iter()
            .map(|backend| {
                JobSpec::new(self.workload.spec().clone(), backend)
                    .with_config(self.config)
                    .with_stop_policy(self.policy.clone())
            })
            .collect();
        let mut batch = Engine::new(workers)
            .with_tracer(self.tracer.clone())
            .run(jobs);
        // The same duplicate-name disambiguation `run_all` applies, so two
        // configurations of one backend stay distinguishable in the report.
        let mut seen = NameDisambiguator::new();
        for outcome in &mut batch.outcomes {
            let report = match &mut outcome.status {
                mffv_engine::JobStatus::Completed(report) => report,
                mffv_engine::JobStatus::Stopped {
                    report: Some(report),
                    ..
                } => report,
                _ => continue,
            };
            if let Some(unique) = seen.disambiguate(&report.backend) {
                report.backend = unique;
                outcome.label = format!("{} @ {}", self.workload.spec().name, report.backend);
            }
        }
        batch
    }

    fn effective_backends(&self) -> Vec<Backend> {
        if self.backends.is_empty() {
            Backend::standard_set()
        } else {
            self.backends.clone()
        }
    }
}

/// Keeps report names unique within one run set: the second, third, …
/// occurrence of a name gains a `#2`, `#3`, … suffix (two dataflow
/// configurations in one comparison stay distinguishable in
/// [`AgreementReport`] lookups and pairwise tables).  Shared by
/// [`Simulation::run_all`] and [`Simulation::batch`].
///
/// Keyed on a `BTreeMap`, not a `HashMap`: suffix assignment must depend only
/// on submission order, never on hash-seed-dependent iteration (the
/// `nondet-iter` audit rule — see `AUDIT.md`).
struct NameDisambiguator {
    seen: BTreeMap<String, usize>,
}

impl NameDisambiguator {
    fn new() -> Self {
        Self {
            seen: BTreeMap::new(),
        }
    }

    /// Register one occurrence of `name`; returns the suffixed replacement
    /// when this is a repeat, `None` when the name is still unique.
    fn disambiguate(&mut self, name: &str) -> Option<String> {
        let count = self.seen.entry(name.to_string()).or_insert(0);
        *count += 1;
        (*count > 1).then(|| format!("{name}#{count}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_defaults_to_the_host_oracle() {
        let report = Simulation::from_spec(&WorkloadSpec::quickstart())
            .tolerance(1e-10)
            .run()
            .unwrap();
        assert_eq!(report.backend, "host-f64");
        assert!(report.converged());
    }

    #[test]
    fn run_executes_the_first_registered_backend() {
        let report = Simulation::from_spec(&WorkloadSpec::quickstart())
            .tolerance(1e-10)
            .backend(Backend::gpu_ref())
            .backend(Backend::dataflow())
            .run()
            .unwrap();
        assert_eq!(report.backend, "gpu-ref-A100");
    }

    #[test]
    fn run_all_defaults_to_the_standard_set_and_agrees() {
        let agreement = Simulation::from_spec(&WorkloadSpec::quickstart())
            .tolerance(1e-10)
            .compare()
            .unwrap();
        assert_eq!(agreement.reports.len(), 3);
        assert_eq!(agreement.pairwise.len(), 3);
        assert!(
            agreement.max_pairwise_diff() < 1e-3,
            "backends disagree: {}",
            agreement.max_pairwise_diff()
        );
        assert!(agreement
            .report("dataflow")
            .unwrap()
            .modelled_time()
            .is_some());
    }

    /// Unwrap every outcome of a `run_all`, panicking on the first failure.
    fn all_reports(outcomes: Vec<(Backend, Result<SolveReport, SolveError>)>) -> Vec<SolveReport> {
        outcomes
            .into_iter()
            .map(|(b, outcome)| outcome.unwrap_or_else(|e| panic!("{}: {e}", b.name())))
            .collect()
    }

    #[test]
    fn facade_tolerance_reaches_every_backend() {
        // A loose tolerance must reduce iteration counts on all backends.
        let sim = Simulation::from_spec(&WorkloadSpec::quickstart());
        let loose = all_reports(sim.clone().tolerance(1e-2).run_all());
        let tight = all_reports(sim.tolerance(1e-12).run_all());
        for (l, t) in loose.iter().zip(tight.iter()) {
            assert_eq!(l.backend, t.backend);
            assert!(
                l.iterations() < t.iterations(),
                "{}: {} !< {}",
                l.backend,
                l.iterations(),
                t.iterations()
            );
        }
    }

    #[test]
    fn duplicate_backend_names_are_disambiguated() {
        use mffv_core::SolverOptions;
        let reports = all_reports(
            Simulation::from_spec(&WorkloadSpec::quickstart())
                .tolerance(1e-10)
                .backend(Backend::dataflow())
                .backend(Backend::dataflow_with(
                    SolverOptions::paper().without_vectorization(),
                ))
                .run_all(),
        );
        assert_eq!(reports[0].backend, "dataflow");
        assert_eq!(reports[1].backend, "dataflow#2");
    }

    #[test]
    fn run_all_keeps_completed_reports_when_one_backend_fails() {
        // A 3000-deep column overflows a PE's memory, so the dataflow backend
        // fails — but the host outcomes must survive alongside the error.
        let workload = WorkloadSpec::paper_grid(3, 3, 3000).build();
        let outcomes = Simulation::new(workload)
            .tolerance(1e-8)
            .backend(Backend::host())
            .backend(Backend::dataflow())
            .backend(Backend::host_f32())
            .run_all();
        assert_eq!(outcomes.len(), 3);
        assert_eq!(outcomes[0].1.as_ref().unwrap().backend, "host-f64");
        let error = outcomes[1].1.as_ref().unwrap_err();
        assert_eq!(error.backend_name(), "dataflow");
        assert!(error.detail().contains("memory"), "{}", error.detail());
        assert_eq!(outcomes[2].1.as_ref().unwrap().backend, "host-f32");
    }

    #[test]
    fn compare_summarises_successes_and_carries_failures() {
        let workload = WorkloadSpec::paper_grid(3, 3, 3000).build();
        let agreement = Simulation::new(workload)
            .tolerance(1e-8)
            .backend(Backend::host())
            .backend(Backend::dataflow())
            .backend(Backend::host_f32())
            .compare()
            .unwrap();
        assert_eq!(agreement.reports.len(), 2);
        assert_eq!(agreement.pairwise.len(), 1);
        assert_eq!(agreement.failures.len(), 1);
        assert_eq!(agreement.failures[0].backend_name(), "dataflow");
        assert!(agreement.to_string().contains("FAILED"));
    }

    #[test]
    fn compare_errors_only_when_every_backend_fails() {
        let workload = WorkloadSpec::paper_grid(3, 3, 3000).build();
        let error = Simulation::new(workload)
            .backend(Backend::dataflow())
            .compare()
            .expect_err("the only backend fails, so compare must");
        assert_eq!(error.backend_name(), "dataflow");
    }

    #[test]
    fn batch_disambiguates_duplicate_backend_names() {
        use mffv_core::SolverOptions;
        let batch = Simulation::from_spec(&WorkloadSpec::quickstart())
            .tolerance(1e-10)
            .backend(Backend::dataflow())
            .backend(Backend::dataflow_with(
                SolverOptions::paper().without_vectorization(),
            ))
            .batch(2);
        assert!(batch.all_succeeded());
        let names: Vec<&str> = batch
            .outcomes
            .iter()
            .map(|o| o.report().unwrap().backend.as_str())
            .collect();
        assert_eq!(names, vec!["dataflow", "dataflow#2"]);
        assert!(batch.outcomes[1].label.ends_with("dataflow#2"));
    }

    #[test]
    fn batch_matches_the_serial_backends_bitwise() {
        let sim = Simulation::from_spec(&WorkloadSpec::quickstart())
            .tolerance(1e-10)
            .backend(Backend::host())
            .backend(Backend::dataflow());
        let batch = sim.batch(2);
        assert_eq!(batch.jobs(), 2);
        assert!(batch.all_succeeded());
        assert_eq!(batch.workers, 2);
        assert!(batch.latency.p95 >= batch.latency.p50);
        let serial: Vec<SolveReport> = all_reports(sim.run_all());
        for (outcome, reference) in batch.outcomes.iter().zip(serial.iter()) {
            let report = outcome.report().unwrap();
            assert_eq!(report.backend, reference.backend);
            let bits = |r: &SolveReport| -> Vec<u64> {
                r.pressure.as_slice().iter().map(|v| v.to_bits()).collect()
            };
            assert_eq!(bits(report), bits(reference), "{}", report.backend);
        }
    }

    #[test]
    fn transient_runs_on_every_backend_and_respects_the_builder_knobs() {
        use mffv_mesh::workload::BoundarySpec;
        use mffv_mesh::{CellIndex, Well, WellSet};
        let workload = WorkloadSpec {
            name: "facade-transient".into(),
            boundary: BoundarySpec::None,
            dims: mffv_mesh::Dims::new(6, 6, 3),
            ..WorkloadSpec::quickstart()
        }
        .build();
        let spec = mffv_mesh::TransientSpec::new(2.0, 0.25, 1e-3)
            .with_wells(WellSet::empty().with(Well::rate("inj", CellIndex::new(2, 2, 1), 1.0)))
            .with_initial_pressure(1.0);
        let sim = Simulation::new(workload).tolerance(1e-18);

        let host = sim.transient(&spec).unwrap();
        assert_eq!(host.backend, "host-f64");
        assert_eq!(host.num_steps(), 8);
        assert!(host.all_converged());
        assert!(
            host.final_pressure().get(0) > 1.0,
            "injection raises pressure"
        );

        let outcomes = sim.transient_all(&spec);
        assert_eq!(outcomes.len(), 3);
        for (backend, outcome) in &outcomes {
            let report = outcome.as_ref().unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(report.num_steps(), 8, "{}", backend.name());
            // Device backends step in f32 but track the f64 oracle closely.
            assert!(
                report.final_pressure().max_abs_diff(host.final_pressure()) < 1e-3,
                "{} drifted from the host trajectory",
                backend.name()
            );
        }
    }

    #[test]
    fn transient_all_disambiguates_duplicate_backend_names() {
        use mffv_mesh::workload::BoundarySpec;
        use mffv_mesh::{CellIndex, Well, WellSet};
        let workload = WorkloadSpec {
            name: "transient-dup".into(),
            boundary: BoundarySpec::None,
            dims: mffv_mesh::Dims::new(4, 4, 2),
            ..WorkloadSpec::quickstart()
        }
        .build();
        let spec = mffv_mesh::TransientSpec::new(0.5, 0.25, 1e-3)
            .with_wells(WellSet::empty().with(Well::rate("inj", CellIndex::new(1, 1, 1), 1.0)))
            .with_initial_pressure(1.0);
        let outcomes = Simulation::new(workload)
            .tolerance(1e-16)
            .backend(Backend::dataflow())
            .backend(Backend::dataflow())
            .transient_all(&spec);
        let names: Vec<&str> = outcomes
            .iter()
            .map(|(_, o)| o.as_ref().unwrap().backend.as_str())
            .collect();
        assert_eq!(names, vec!["dataflow", "dataflow#2"]);
        assert!(outcomes[1].1.as_ref().unwrap().steps[0]
            .report
            .backend
            .ends_with("#2"));
    }

    #[test]
    fn multigrid_preconditioner_agrees_across_backends() {
        let agreement = Simulation::from_spec(&WorkloadSpec::quickstart())
            .tolerance(1e-10)
            .preconditioner(PreconditionerKind::Mg)
            .compare()
            .unwrap();
        assert_eq!(agreement.reports.len(), 3);
        assert!(
            agreement.max_pairwise_diff() < 1e-3,
            "MG-preconditioned backends disagree: {}",
            agreement.max_pairwise_diff()
        );
    }

    #[test]
    fn precision_selects_the_host_arithmetic() {
        let report = Simulation::from_spec(&WorkloadSpec::quickstart())
            .precision(Precision::F32)
            .tolerance(1e-9)
            .run()
            .unwrap();
        assert_eq!(report.backend, "host-f32");
    }
}
