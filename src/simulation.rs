//! The `Simulation` builder — one backend-agnostic entry point for every
//! pressure solve in the workspace.
//!
//! ```
//! use mffv::prelude::*;
//!
//! let workload = WorkloadSpec::quickstart().build();
//! let report = Simulation::new(workload)
//!     .tolerance(1e-10)
//!     .backend(Backend::host())
//!     .run()
//!     .unwrap();
//! assert!(report.converged());
//! ```
//!
//! `run()` executes the primary (first-registered) backend; `run_all()`
//! executes every registered backend — or the three paper targets when none
//! was registered — and `compare()` condenses those runs into the §V-B
//! numerical-integrity table ([`AgreementReport`]).

use crate::backend::Backend;
use crate::report::{AgreementReport, SolveReport};
use mffv_mesh::{Workload, WorkloadSpec};
use mffv_solver::backend::{Precision, SolveConfig, SolveError};

/// Builder facade over the three solver implementations.
#[derive(Clone, Debug)]
pub struct Simulation {
    workload: Workload,
    config: SolveConfig,
    backends: Vec<Backend>,
}

impl Simulation {
    /// A simulation of `workload` with its own tolerance/iteration settings
    /// and no backend registered yet (`run()` then uses the host oracle).
    pub fn new(workload: Workload) -> Self {
        Self {
            workload,
            config: SolveConfig::default(),
            backends: Vec::new(),
        }
    }

    /// Convenience: build the workload from a spec first.
    pub fn from_spec(spec: &WorkloadSpec) -> Self {
        Self::new(spec.build())
    }

    /// Override the convergence tolerance on `rᵀr` for every backend.
    pub fn tolerance(mut self, tolerance: f64) -> Self {
        self.config.tolerance = Some(tolerance);
        self
    }

    /// Override the iteration cap for every backend.
    pub fn max_iterations(mut self, max_iterations: usize) -> Self {
        self.config.max_iterations = Some(max_iterations);
        self
    }

    /// Set the host-solve precision used when no backend is registered (a
    /// registered [`Backend::Host`] carries its own precision; the device
    /// backends always run `f32`).
    pub fn precision(mut self, precision: Precision) -> Self {
        self.config.precision = precision;
        self
    }

    /// Register a backend.  The first registered backend is the one `run()`
    /// executes; `run_all()`/`compare()` execute all of them in order.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backends.push(backend);
        self
    }

    /// Register several backends at once.
    pub fn backends(mut self, backends: impl IntoIterator<Item = Backend>) -> Self {
        self.backends.extend(backends);
        self
    }

    /// The workload being solved.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The normalized cross-backend settings.
    pub fn config(&self) -> &SolveConfig {
        &self.config
    }

    /// Run the primary backend (the first registered one, or the host oracle
    /// when none was registered) and return its unified report.
    pub fn run(&self) -> Result<SolveReport, SolveError> {
        let primary = self.backends.first().copied().unwrap_or(Backend::Host {
            precision: self.config.precision,
        });
        self.run_backend(&primary)
    }

    /// Run one specific backend under this simulation's workload and config.
    pub fn run_backend(&self, backend: &Backend) -> Result<SolveReport, SolveError> {
        backend.instantiate().solve(&self.workload, &self.config)
    }

    /// Run every registered backend — or [`Backend::standard_set`] when none
    /// was registered — and return their reports in execution order.
    ///
    /// Report names are kept unique within the returned set: a second backend
    /// producing the same name (e.g. two dataflow configurations) is suffixed
    /// `#2`, `#3`, … so [`AgreementReport`] lookups and the pairwise table
    /// stay unambiguous.
    pub fn run_all(&self) -> Result<Vec<SolveReport>, SolveError> {
        let mut reports: Vec<SolveReport> = self
            .effective_backends()
            .iter()
            .map(|b| self.run_backend(b))
            .collect::<Result<_, _>>()?;
        let mut seen: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
        for report in &mut reports {
            let count = seen.entry(report.backend.clone()).or_insert(0);
            *count += 1;
            if *count > 1 {
                report.backend = format!("{}#{}", report.backend, count);
            }
        }
        Ok(reports)
    }

    /// Run every backend and condense the results into the cross-backend
    /// agreement report (the programmatic §V-B integrity table).
    pub fn compare(&self) -> Result<AgreementReport, SolveError> {
        let reports = self.run_all()?;
        Ok(AgreementReport::from_reports(
            self.workload.name(),
            self.workload.dims(),
            reports,
        ))
    }

    fn effective_backends(&self) -> Vec<Backend> {
        if self.backends.is_empty() {
            Backend::standard_set()
        } else {
            self.backends.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_defaults_to_the_host_oracle() {
        let report = Simulation::from_spec(&WorkloadSpec::quickstart())
            .tolerance(1e-10)
            .run()
            .unwrap();
        assert_eq!(report.backend, "host-f64");
        assert!(report.converged());
    }

    #[test]
    fn run_executes_the_first_registered_backend() {
        let report = Simulation::from_spec(&WorkloadSpec::quickstart())
            .tolerance(1e-10)
            .backend(Backend::gpu_ref())
            .backend(Backend::dataflow())
            .run()
            .unwrap();
        assert_eq!(report.backend, "gpu-ref-A100");
    }

    #[test]
    fn run_all_defaults_to_the_standard_set_and_agrees() {
        let agreement = Simulation::from_spec(&WorkloadSpec::quickstart())
            .tolerance(1e-10)
            .compare()
            .unwrap();
        assert_eq!(agreement.reports.len(), 3);
        assert_eq!(agreement.pairwise.len(), 3);
        assert!(
            agreement.max_pairwise_diff() < 1e-3,
            "backends disagree: {}",
            agreement.max_pairwise_diff()
        );
        assert!(agreement
            .report("dataflow")
            .unwrap()
            .modelled_time()
            .is_some());
    }

    #[test]
    fn facade_tolerance_reaches_every_backend() {
        // A loose tolerance must reduce iteration counts on all backends.
        let sim = Simulation::from_spec(&WorkloadSpec::quickstart());
        let loose = sim.clone().tolerance(1e-2).run_all().unwrap();
        let tight = sim.tolerance(1e-12).run_all().unwrap();
        for (l, t) in loose.iter().zip(tight.iter()) {
            assert_eq!(l.backend, t.backend);
            assert!(
                l.iterations() < t.iterations(),
                "{}: {} !< {}",
                l.backend,
                l.iterations(),
                t.iterations()
            );
        }
    }

    #[test]
    fn duplicate_backend_names_are_disambiguated() {
        use mffv_core::SolverOptions;
        let reports = Simulation::from_spec(&WorkloadSpec::quickstart())
            .tolerance(1e-10)
            .backend(Backend::dataflow())
            .backend(Backend::dataflow_with(
                SolverOptions::paper().without_vectorization(),
            ))
            .run_all()
            .unwrap();
        assert_eq!(reports[0].backend, "dataflow");
        assert_eq!(reports[1].backend, "dataflow#2");
    }

    #[test]
    fn precision_selects_the_host_arithmetic() {
        let report = Simulation::from_spec(&WorkloadSpec::quickstart())
            .precision(Precision::F32)
            .tolerance(1e-9)
            .run()
            .unwrap();
        assert_eq!(report.backend, "host-f32");
    }
}
